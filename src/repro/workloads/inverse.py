"""Two-level block-wise matrix inverse (paper Section 8.2, Fig 9).

The classic partitioned inverse [Graybill 1983]::

    [A B]^-1   [Abar Bbar]
    [C D]    = [Cbar Dbar]

with ``S = D - C A^-1 B`` (the Schur complement) and::

    Abar = A^-1 + A^-1 B S^-1 C A^-1
    Bbar = -A^-1 B S^-1
    Cbar = -S^-1 C A^-1
    Dbar = S^-1

"Two-level" means ``A^-1`` is itself computed by the same formula over A's
sub-blocks.  Following the paper's setup, the outer blocks A, B, C, D are
10K x 10K and A arrives pre-split into 2K x 2K, 2K x 8K, 8K x 2K and
8K x 8K sub-blocks.  The inner-level block inverse is stitched back into a
full ``A^-1`` with constant selector matrices ``U1 = [I; 0]`` and
``U2 = [0; I]`` (so the stitching is itself expressed with atomic matmuls
and adds and participates in physical-design optimization).
"""

from __future__ import annotations

import numpy as np

from ..core.graph import ComputeGraph
from ..lang import Expr, build, input_matrix, inverse


def _block_inverse(a: Expr, b: Expr, c: Expr, d: Expr
                   ) -> tuple[Expr, Expr, Expr, Expr]:
    """One level of the partitioned-inverse formula, given ``A^-1``-able A."""
    a_inv = inverse(a)
    return _block_inverse_given(a_inv, b, c, d)


def _block_inverse_given(a_inv: Expr, b: Expr, c: Expr, d: Expr
                         ) -> tuple[Expr, Expr, Expr, Expr]:
    """The partitioned-inverse formula with ``A^-1`` already available."""
    a_inv_b = a_inv @ b
    c_a_inv = c @ a_inv
    schur = d - (c @ a_inv_b)
    s_inv = inverse(schur)
    abar = a_inv + (a_inv_b @ (s_inv @ c_a_inv))
    bbar = -(a_inv_b @ s_inv)
    cbar = -(s_inv @ c_a_inv)
    dbar = s_inv
    return abar, bbar, cbar, dbar


def _stitch(blocks: tuple[Expr, Expr, Expr, Expr],
            u1: Expr, u2: Expr) -> Expr:
    """Assemble a 2x2 block matrix via selector matrices:
    M = U1 M11 U1' + U1 M12 U2' + U2 M21 U1' + U2 M22 U2'."""
    m11, m12, m21, m22 = blocks
    return (((u1 @ m11) @ u1.T) + ((u1 @ m12) @ u2.T)
            + ((u2 @ m21) @ u1.T) + ((u2 @ m22) @ u2.T))


def two_level_inverse_graph(outer: int = 10_000, inner_top: int = 2_000
                            ) -> ComputeGraph:
    """The paper's Fig 9 computation.

    ``outer`` is the size of the blocks A, B, C, D (10K in the paper);
    ``inner_top`` the size of A's top-left sub-block (2K in the paper).
    Outputs the four blocks of the inverse as a multi-output graph.
    """
    inner_bot = outer - inner_top

    # Sources: A arrives pre-split, B/C/D whole, plus the selectors.
    a11 = input_matrix("A11", inner_top, inner_top)
    a12 = input_matrix("A12", inner_top, inner_bot)
    a21 = input_matrix("A21", inner_bot, inner_top)
    a22 = input_matrix("A22", inner_bot, inner_bot)
    b = input_matrix("B", outer, outer)
    c = input_matrix("C", outer, outer)
    d = input_matrix("D", outer, outer)
    u1 = input_matrix("U1", outer, inner_top, sparsity=float(inner_top) /
                      (outer * inner_top))
    u2 = input_matrix("U2", outer, inner_bot, sparsity=float(inner_bot) /
                      (outer * inner_bot))

    # Inner level: A^-1 from A's sub-blocks, stitched into one matrix.
    inner_blocks = _block_inverse(a11, a12, a21, a22)
    a_inv = _stitch(inner_blocks, u1, u2)

    # Outer level: the same formula with A^-1 already computed.
    abar, bbar, cbar, dbar = _block_inverse_given(a_inv, b, c, d)
    abar.name, bbar.name, cbar.name, dbar.name = \
        "Abar", "Bbar", "Cbar", "Dbar"
    return build([abar, bbar, cbar, dbar])


def make_inverse_inputs(outer: int, inner_top: int,
                        seed: int = 0) -> dict[str, np.ndarray]:
    """Generate numeric inputs for executing a two-level inverse graph."""
    from .datagen import spd_matrix

    inner_bot = outer - inner_top
    full = spd_matrix(2 * outer, seed=seed)
    a = full[:outer, :outer]
    u1 = np.zeros((outer, inner_top))
    u1[:inner_top, :] = np.eye(inner_top)
    u2 = np.zeros((outer, inner_bot))
    u2[inner_top:, :] = np.eye(inner_bot)
    return {
        "A11": a[:inner_top, :inner_top],
        "A12": a[:inner_top, inner_top:],
        "A21": a[inner_top:, :inner_top],
        "A22": a[inner_top:, inner_top:],
        "B": full[:outer, outer:],
        "C": full[outer:, :outer],
        "D": full[outer:, outer:],
        "U1": u1,
        "U2": u2,
    }


def reference_inverse(inputs: dict[str, np.ndarray]
                      ) -> dict[str, np.ndarray]:
    """Dense numpy reference for the four output blocks."""
    a = np.block([[inputs["A11"], inputs["A12"]],
                  [inputs["A21"], inputs["A22"]]])
    full = np.block([[a, inputs["B"]], [inputs["C"], inputs["D"]]])
    inv = np.linalg.inv(full)
    outer = a.shape[0]
    return {
        "Abar": inv[:outer, :outer],
        "Bbar": inv[:outer, outer:],
        "Cbar": inv[outer:, :outer],
        "Dbar": inv[outer:, outer:],
    }
