"""Unit tests for the logical rewrite passes and the plan pipeline."""

import json

import pytest

from repro.core.atoms import (
    FusedStep,
    MATMUL,
    atom_by_name,
    fused_atom,
    fused_steps,
    is_fused,
)
from repro.core.explain import explain
from repro.core.implementations import fused_impl_by_name
from repro.core.optimizer import optimize
from repro.core.registry import OptimizerContext
from repro.core.rewrites import (
    CSEPass,
    DEFAULT_PASS_ORDER,
    FusionPass,
    PASS_REGISTRY,
    PlanPipeline,
    ReassociatePass,
    ScalarPushdownPass,
    TransposePushdownPass,
    resolve_passes,
)
from repro.core.serialize import plan_from_json, plan_to_json
from repro.lang import build, input_matrix, relu
from repro.lang.expr import add_bias


@pytest.fixture(scope="module")
def ctx():
    return OptimizerContext()


class TestCSEPass:
    def test_merges_structural_duplicates(self, ctx):
        x = input_matrix("X", 50, 50)
        g = build((x @ x) + (x @ x), cse=False)
        rewritten, report = CSEPass().apply(g, ctx)
        assert report.fired and report.rewrites == 1
        assert len(rewritten.inner_vertices) == 2

    def test_distinguishes_params(self, ctx):
        x = input_matrix("X", 50, 50)
        g = build((x * 2.0) + (x * 3.0), cse=False)
        rewritten, report = CSEPass().apply(g, ctx)
        assert not report.fired
        assert len(rewritten.inner_vertices) == len(g.inner_vertices)

    def test_respects_argument_order(self, ctx):
        a = input_matrix("A", 50, 50)
        b = input_matrix("B", 50, 50)
        g = build((a @ b) + (b @ a), cse=False)
        _, report = CSEPass().apply(g, ctx)
        assert not report.fired


class TestTransposePushdown:
    def test_double_transpose_eliminated(self, ctx):
        x = input_matrix("X", 100, 200)
        g = build(relu(x.T.T), cse=False)
        rewritten, report = TransposePushdownPass().apply(g, ctx)
        assert report.fired
        assert all(v.op is not atom_by_name("transpose")
                   for v in rewritten.inner_vertices)

    def test_gradient_pattern_loses_large_transpose(self, ctx):
        # (Xᵀ Y)ᵀ -> Yᵀ X: the transpose moves off the big product.
        x = input_matrix("X", 10_000, 200)
        y = input_matrix("Y", 10_000, 8_000)
        g = build((x.T @ y).T)
        rewritten, report = TransposePushdownPass().apply(g, ctx)
        assert report.fired
        # The rewritten graph transposes Y (10000x8000), not the
        # 200x8000 product: exactly one transpose, consuming a source.
        transposes = [v for v in rewritten.inner_vertices
                      if v.op.name == "transpose"]
        assert len(transposes) == 1
        assert rewritten.vertex(transposes[0].inputs[0]).is_source

    def test_small_product_not_rewritten(self, ctx):
        # Transposing the tiny product is cheaper than transposing both
        # large operands; the cost guard must refuse.
        a = input_matrix("A", 30, 10_000)
        b = input_matrix("B", 10_000, 20)
        g = build((a @ b).T)
        _, report = TransposePushdownPass().apply(g, ctx)
        assert not report.fired


class TestReassociate:
    def test_chain_reassociated(self, ctx):
        a = input_matrix("A", 1000, 50)
        b = input_matrix("B", 50, 20_000)
        c = input_matrix("C", 20_000, 30)
        g = build((a @ b) @ c)
        rewritten, report = ReassociatePass().apply(g, ctx)
        assert report.fired
        # Optimal association is a @ (b @ c): the root's left input is a.
        root = rewritten.outputs[0]
        assert rewritten.vertex(root.inputs[0]).name == "A"

    def test_already_optimal_untouched(self, ctx):
        a = input_matrix("A", 1000, 50)
        b = input_matrix("B", 50, 20_000)
        c = input_matrix("C", 20_000, 30)
        g = build(a @ (b @ c))
        _, report = ReassociatePass().apply(g, ctx)
        assert not report.fired

    def test_shared_interior_not_absorbed(self, ctx):
        # ab feeds two consumers -> reassociating through it would change
        # sharing; the chain finder must treat it as a leaf.
        a = input_matrix("A", 1000, 50)
        b = input_matrix("B", 50, 20_000)
        c = input_matrix("C", 20_000, 30)
        ab = a @ b
        g = build([(ab @ c), relu(ab)])
        _, report = ReassociatePass().apply(g, ctx)
        assert not report.fired


class TestScalarPushdown:
    def test_scalar_chain_collapsed(self, ctx):
        x = input_matrix("X", 100, 100)
        g = build((x * 2.0) * 3.0, cse=False)
        rewritten, report = ScalarPushdownPass().apply(g, ctx)
        assert report.fired
        scalar_ops = [v for v in rewritten.inner_vertices
                      if v.op.name == "scalar_mul"]
        assert len(scalar_ops) == 1
        assert scalar_ops[0].param == 6.0

    def test_scalar_pushed_into_smaller_operand(self, ctx):
        q = input_matrix("Q", 1024, 64)
        k = input_matrix("K", 64, 1024)
        g = build((q @ k) * 0.125)
        rewritten, report = ScalarPushdownPass().apply(g, ctx)
        assert report.fired
        scalar_ops = [v for v in rewritten.inner_vertices
                      if v.op.name == "scalar_mul"]
        assert len(scalar_ops) == 1
        # The scale lands on a 1024x64 operand, not the 1024x1024 product.
        assert rewritten.vertex(scalar_ops[0].inputs[0]).mtype.entries \
            == 1024 * 64


class TestFusion:
    def test_bias_relu_fused(self, ctx):
        x = input_matrix("X", 1000, 6000)
        w = input_matrix("W", 6000, 400)
        b = input_matrix("b", 1, 400)
        g = build(relu(add_bias(x @ w, b)))
        rewritten, report = FusionPass().apply(g, ctx)
        assert report.fired
        fused = [v for v in rewritten.inner_vertices if is_fused(v.op)]
        assert len(fused) == 1
        assert fused[0].op.name == "fused(add_bias|relu)"

    def test_multi_consumer_not_fused(self, ctx):
        x = input_matrix("X", 1000, 400)
        b = input_matrix("b", 1, 400)
        z = add_bias(x, b)
        g = build([relu(z), z * 2.0])
        rewritten, _ = FusionPass().apply(g, ctx)
        # z feeds two consumers, so add_bias cannot be absorbed; only the
        # unary pair relu/scalar could fuse with it absent.
        assert all(v.op.name != "fused(add_bias|relu)"
                   for v in rewritten.inner_vertices)

    def test_fused_atom_type_composes(self):
        atom = fused_atom((FusedStep("add"), FusedStep("relu"),
                           FusedStep("scalar_mul", 0.5)))
        assert atom.arity == 2
        steps = fused_steps(atom.name)
        assert steps[-1].param == 0.5
        # Interned: same chain -> same object.
        assert fused_atom(steps) is atom

    def test_fused_impl_round_trip_by_name(self):
        atom = fused_atom((FusedStep("add_bias"), FusedStep("relu")))
        from repro.core.implementations import fused_implementations
        for impl in fused_implementations(atom):
            assert fused_impl_by_name(impl.name).name == impl.name


class TestPipeline:
    def test_resolve_specs(self):
        assert [p.name for p in resolve_passes("all")] == \
            list(DEFAULT_PASS_ORDER)
        assert resolve_passes("none") == ()
        assert [p.name for p in resolve_passes(("fuse", "cse"))] == \
            ["fuse", "cse"]
        with pytest.raises(ValueError):
            resolve_passes(("nope",))
        with pytest.raises(ValueError):
            resolve_passes("sometimes")

    def test_registry_covers_default_order(self):
        assert set(DEFAULT_PASS_ORDER) <= set(PASS_REGISTRY)

    def test_run_reports_every_pass(self, ctx):
        x = input_matrix("X", 100, 100)
        g = build(relu(x))
        _, report = PlanPipeline.from_spec("all").run(g, ctx)
        assert [p.name for p in report.passes] == list(DEFAULT_PASS_ORDER)

    def test_optimize_rejects_bad_spec(self, ctx):
        x = input_matrix("X", 10, 10)
        g = build(relu(x))
        with pytest.raises(ValueError):
            optimize(g, ctx, rewrites="everything")


class TestPlanIntegration:
    @pytest.fixture(scope="class")
    def fused_plan(self, ctx):
        x = input_matrix("X", 1000, 6000)
        w = input_matrix("W", 6000, 400)
        b = input_matrix("b", 1, 400)
        g = build(relu(add_bias(x @ w, b)) * 0.5)
        return g, optimize(g, ctx, rewrites="all"), \
            optimize(g, ctx, rewrites="none")

    def test_rewritten_plan_cheaper(self, fused_plan):
        _, on, off = fused_plan
        assert on.total_seconds < off.total_seconds

    def test_pipeline_report_attached(self, fused_plan):
        _, on, off = fused_plan
        assert on.pipeline is not None and on.pipeline.adopted
        assert any(p.name == "fuse" and p.fired for p in on.pipeline.passes)
        assert off.pipeline is None

    def test_explain_lists_fired_passes(self, fused_plan, ctx):
        _, on, _ = fused_plan
        text = explain(on, ctx)
        assert "rewrites:" in text
        assert "fuse(" in text
        assert "[fuse]" in text

    def test_serialize_round_trip_with_fused_atoms(self, fused_plan, ctx):
        _, on, _ = fused_plan
        payload = plan_to_json(on)
        restored = plan_from_json(payload, ctx)
        assert restored.total_seconds == pytest.approx(on.total_seconds)
        assert restored.pipeline is not None
        assert restored.pipeline.summary() == on.pipeline.summary()
        # The wire format is valid JSON containing the fused atom name.
        assert "fused(add_bias|relu" in json.dumps(json.loads(payload))

    def test_matmul_unchanged_by_fusion(self, fused_plan):
        g, on, _ = fused_plan
        assert sum(1 for v in on.graph.inner_vertices
                   if v.op is MATMUL) == 1
