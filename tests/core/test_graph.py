"""Tests for compute graph construction and analysis."""

import pytest

from repro.core.atoms import ADD, MATMUL, RELU, TRANSPOSE
from repro.core.formats import single, tiles
from repro.core.graph import ComputeGraph, GraphError
from repro.core.types import matrix


def _simple_graph():
    g = ComputeGraph()
    a = g.add_source("A", matrix(10, 20), single())
    b = g.add_source("B", matrix(20, 30), single())
    ab = g.add_op("AB", MATMUL, (a, b))
    r = g.add_op("R", RELU, (ab,))
    return g, a, b, ab, r


class TestConstruction:
    def test_type_inference(self):
        g, a, b, ab, r = _simple_graph()
        assert g.vertex(ab).mtype.dims == (10, 30)
        assert g.vertex(r).mtype.dims == (10, 30)

    def test_source_format_recorded(self):
        g, a, *_ = _simple_graph()
        assert g.vertex(a).format == single()
        assert g.vertex(a).is_source

    def test_inadmissible_source_format_rejected(self):
        g = ComputeGraph()
        with pytest.raises(GraphError):
            g.add_source("A", matrix(10, 10), tiles(1000))

    def test_type_error_rejected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 20), single())
        b = g.add_source("B", matrix(21, 30), single())
        with pytest.raises(GraphError):
            g.add_op("AB", MATMUL, (a, b))

    def test_arity_mismatch_rejected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 20), single())
        with pytest.raises(GraphError):
            g.add_op("bad", MATMUL, (a,))

    def test_unknown_input_rejected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        with pytest.raises(GraphError):
            g.add_op("bad", RELU, (a + 99,))

    def test_param_stored(self):
        from repro.core.atoms import SCALAR_MUL
        g = ComputeGraph()
        a = g.add_source("A", matrix(5, 5), single())
        s = g.add_op("S", SCALAR_MUL, (a,), param=2.5)
        assert g.vertex(s).param == 2.5


class TestStructure:
    def test_edges_and_degrees(self):
        g, a, b, ab, r = _simple_graph()
        assert g.out_degree(a) == 1
        assert g.out_degree(ab) == 1
        assert g.out_degree(r) == 0
        assert len(g.edges) == 3
        assert [e.src for e in g.in_edges(ab)] == [a, b]

    def test_multi_edge_self_product(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        sq = g.add_op("sq", MATMUL, (a, a))
        assert g.out_degree(a) == 2
        assert [e.arg_pos for e in g.in_edges(sq)] == [0, 1]

    def test_tree_detection(self):
        g, *_ = _simple_graph()
        assert g.is_tree_shaped()

    def test_dag_not_tree(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        t = g.add_op("T", TRANSPOSE, (a,))
        g.add_op("S", ADD, (t, t))
        assert not g.is_tree_shaped()

    def test_sinks(self):
        g, *_rest, r = _simple_graph()
        assert [s.vid for s in g.sinks()] == [r]

    def test_ancestors_include_self(self):
        g, a, b, ab, r = _simple_graph()
        masks = g.ancestors()
        assert masks[a] == 1 << a
        assert masks[ab] & (1 << a)
        assert masks[ab] & (1 << b)
        assert masks[ab] & (1 << ab)
        assert masks[r] & (1 << a)

    def test_topological_order_sources_first(self):
        g, a, b, ab, r = _simple_graph()
        order = g.topological_order()
        assert order.index(a) < order.index(ab) < order.index(r)

    def test_validate_empty_graph(self):
        with pytest.raises(GraphError):
            ComputeGraph().validate()

    def test_describe_mentions_all_vertices(self):
        g, *_ = _simple_graph()
        text = g.describe()
        for v in g.vertices:
            assert v.name in text
