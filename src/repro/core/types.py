"""Matrix types.

The paper (Section 3) defines a *matrix type* as a pair ``(d, b)`` where ``d``
is the dimensionality and ``b`` gives the extent along each dimension.  For
the cost model (Section 7) we additionally carry the *sparsity* of the data —
defined, as in the paper, as the fraction of entries that are non-zero
(``1.0`` means fully dense).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Bytes per matrix entry.  The paper stores double-precision floats.
ENTRY_BYTES = 8

#: Approximate bytes per non-zero in a COO/CSR-style sparse encoding
#: (value + index overhead).
SPARSE_ENTRY_BYTES = 16


@dataclass(frozen=True)
class MatrixType:
    """A logical matrix/tensor type: shape plus estimated sparsity.

    ``dims`` is the extent along each dimension: ``(n,)`` for a vector,
    ``(rows, cols)`` for a matrix.  Higher-order tensors are representable but
    the default operator catalog works on vectors and matrices, mirroring the
    paper's prototype.

    ``sparsity`` is the estimated fraction of non-zero entries in
    ``[0.0, 1.0]``; it only affects costing, never typing.
    """

    dims: tuple[int, ...]
    sparsity: float = 1.0

    def __post_init__(self) -> None:
        if not self.dims:
            raise ValueError("a matrix type needs at least one dimension")
        if any(d <= 0 for d in self.dims):
            raise ValueError(f"all extents must be positive, got {self.dims}")
        if not 0.0 <= self.sparsity <= 1.0:
            raise ValueError(f"sparsity must be in [0, 1], got {self.sparsity}")

    # ------------------------------------------------------------------
    # Shape accessors
    # ------------------------------------------------------------------
    @property
    def ndim(self) -> int:
        """Dimensionality ``d`` of the type (1 = vector, 2 = matrix)."""
        return len(self.dims)

    @property
    def rows(self) -> int:
        """Row count.  A vector is treated as a single-row matrix."""
        return self.dims[0] if self.ndim >= 2 else 1

    @property
    def cols(self) -> int:
        """Column count.  For a vector this is its length."""
        return self.dims[-1]

    @property
    def entries(self) -> int:
        """Total number of entries."""
        return math.prod(self.dims)

    @property
    def nnz(self) -> float:
        """Estimated number of non-zero entries."""
        return self.entries * self.sparsity

    # ------------------------------------------------------------------
    # Byte sizes
    # ------------------------------------------------------------------
    @property
    def dense_bytes(self) -> int:
        """Bytes needed to store the matrix densely."""
        return self.entries * ENTRY_BYTES

    @property
    def sparse_bytes(self) -> float:
        """Approximate bytes needed to store only the non-zeros."""
        return self.nnz * SPARSE_ENTRY_BYTES

    @property
    def is_dense(self) -> bool:
        """True when a dense encoding is at least as compact as sparse."""
        return self.dense_bytes <= self.sparse_bytes

    # ------------------------------------------------------------------
    # Derivations
    # ------------------------------------------------------------------
    def with_sparsity(self, sparsity: float) -> "MatrixType":
        """Return the same shape with a different sparsity estimate."""
        return MatrixType(self.dims, sparsity)

    def transposed(self) -> "MatrixType":
        """Type of the transpose (2-D only)."""
        if self.ndim != 2:
            raise ValueError("transpose is only defined for 2-D types")
        return MatrixType((self.dims[1], self.dims[0]), self.sparsity)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        shape = "x".join(str(d) for d in self.dims)
        if self.sparsity < 1.0:
            return f"{shape}(sp={self.sparsity:.4g})"
        return shape


def matrix(rows: int, cols: int, sparsity: float = 1.0) -> MatrixType:
    """Convenience constructor for a 2-D matrix type."""
    return MatrixType((rows, cols), sparsity)


def vector(length: int, sparsity: float = 1.0) -> MatrixType:
    """Convenience constructor for a (row-)vector type."""
    return MatrixType((1, length), sparsity)


def matmul_sparsity(lhs: MatrixType, rhs: MatrixType) -> float:
    """Estimated output sparsity of ``lhs @ rhs``.

    Uses the standard independence assumption: an output cell is zero only if
    every one of the ``k`` product terms along the inner dimension is zero,
    giving nnz fraction ``1 - (1 - s_l * s_r)**k``.  This is the simple
    estimator the paper's prototype uses; the MNC-style structured estimator
    (paper Section 7, future work) lives in :mod:`repro.cost.sparsity`.
    """
    k = lhs.cols
    p = lhs.sparsity * rhs.sparsity
    if p <= 0.0:
        return 0.0
    if p >= 1.0:
        return 1.0
    # log1p-based evaluation stays accurate for tiny p and huge k.
    return -math.expm1(k * math.log1p(-p))


def union_sparsity(a: float, b: float) -> float:
    """Estimated sparsity of an entry-wise union (e.g. add/sub)."""
    return min(1.0, a + b - a * b)


def intersect_sparsity(a: float, b: float) -> float:
    """Estimated sparsity of an entry-wise intersection (e.g. Hadamard)."""
    return a * b
