"""Planner-as-a-service: cached, coalesced access to the optimizer.

The service layer consolidates every planning entry point — SQL sessions,
``explain``, what-if sweeps, the experiment harness — behind one
:class:`PlannerService` backed by a fingerprint-keyed :class:`PlanCache`
and a :class:`SingleFlight` admission gate.
"""

from ..core.fingerprint import (CATALOG_VERSION, Fingerprint,
                                batch_fingerprint, request_fingerprint)
from .cache import PlanCache
from .planner import PlannerService
from .singleflight import AdmissionBatcher, SingleFlight

__all__ = [
    "AdmissionBatcher",
    "CATALOG_VERSION",
    "Fingerprint",
    "PlanCache",
    "PlannerService",
    "SingleFlight",
    "batch_fingerprint",
    "request_fingerprint",
]
