"""Optimizer facade: the staged plan pipeline.

Optimization is a pipeline of explicit stages:

1. **Logical rewrites** (``rewrites=`` knob): an ordered sequence of
   semantics-preserving, cost-guided graph passes — CSE, transpose
   pushdown, matmul-chain reassociation, scalar pushdown, elementwise
   fusion (see :mod:`repro.core.rewrites`).
2. **Physical optimization**: the linear-time tree DP (paper Algorithm 3)
   when the graph is tree shaped, the frontier algorithm (paper
   Algorithm 4) for general DAGs, or brute force (paper Algorithm 2) on
   request.

When rewrites run, the unrewritten graph is also optimized and the cheaper
of the two plans wins — the logical passes use per-op cost estimates, so a
rewrite can occasionally lose once transformations are priced in, and the
fallback guarantees ``rewrites="all"`` never costs more than
``rewrites="none"``.  The returned :class:`Plan` carries a
:class:`~repro.core.rewrites.PipelineReport` describing what each pass did.
"""

from __future__ import annotations

import dataclasses

from .annotation import Plan
from .brute import optimize_brute
from .frontier import FrontierStats, optimize_dag
from .graph import ComputeGraph
from .registry import OptimizerContext
from .rewrites import PipelineReport, PlanPipeline, RewriteSpec
from .tree_dp import optimize_tree

ALGORITHMS = ("auto", "tree", "frontier", "brute")


def _context_for(graph: ComputeGraph, ctx: OptimizerContext
                 ) -> OptimizerContext:
    """Extend the context's format catalog with the graph's load formats.

    Input matrices may arrive in formats outside the search catalog (e.g.
    width-10 strips in the Section 2.1 example).  Adding them lets the
    search use implementations on the loaded formats directly instead of
    forcing a transformation first.
    """
    extra = [s.format for s in graph.sources if s.format not in ctx.formats]
    if not extra:
        return ctx
    seen = dict.fromkeys(tuple(ctx.formats) + tuple(extra))
    return dataclasses.replace(ctx, formats=tuple(seen))


def optimize(graph: ComputeGraph, ctx: OptimizerContext | None = None,
             algorithm: str = "auto",
             timeout_seconds: float | None = None,
             stats: FrontierStats | None = None,
             max_states: int | None = None,
             rewrites: RewriteSpec = "none",
             prune: bool | None = None,
             order: str = "class-size") -> Plan:
    """Produce the cost-optimal, type-correct annotated plan for ``graph``.

    ``algorithm`` is one of ``auto`` (tree DP when tree shaped, else the
    frontier algorithm), ``tree``, ``frontier`` or ``brute``.
    ``timeout_seconds`` only applies to brute force; ``max_states``
    beam-prunes the frontier algorithm's class tables (None = exact).
    ``prune`` and ``order`` tune the frontier algorithm's lossless
    dominance prune and sweep-order heuristic (see
    :func:`repro.core.frontier.optimize_dag`); neither changes the
    returned plan.  ``prune=None`` (the default) prunes exactly when no
    beam is active.

    ``rewrites`` selects the logical rewrite pipeline that runs before the
    physical search: ``"all"`` (the default pass order), ``"none"``, or a
    tuple of pass names from
    :data:`repro.core.rewrites.PASS_REGISTRY` in the order they should run.
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ALGORITHMS}")
    if ctx is None:
        ctx = OptimizerContext()
    ctx = _context_for(graph, ctx)

    pipeline = PlanPipeline.from_spec(rewrites)
    report: PipelineReport | None = None
    rewritten = graph
    if pipeline.passes:
        rewritten, report = pipeline.run(graph, ctx)

    plan = _optimize_physical(rewritten, ctx, algorithm, timeout_seconds,
                              stats, max_states, prune, order)
    if report is not None and report.total_rewrites > 0:
        # Safety net: the logical passes are guided by per-op estimates;
        # fall back to the unrewritten graph when its *plan* is cheaper.
        plain = _optimize_physical(graph, ctx, algorithm, timeout_seconds,
                                   stats, max_states, prune, order)
        if plain.total_seconds < plan.total_seconds:
            plan = plain
            report = dataclasses.replace(report, adopted=False)
    if report is not None:
        plan = dataclasses.replace(plan, pipeline=report)
    return plan


def _optimize_physical(graph: ComputeGraph, ctx: OptimizerContext,
                       algorithm: str,
                       timeout_seconds: float | None,
                       stats: FrontierStats | None,
                       max_states: int | None,
                       prune: bool | None = None,
                       order: str = "class-size") -> Plan:
    """Stage 2: physical search over one (possibly rewritten) graph."""
    if algorithm == "auto":
        algorithm = "tree" if graph.is_tree_shaped() else "frontier"
    if algorithm == "tree":
        return optimize_tree(graph, ctx)
    if algorithm == "frontier":
        return optimize_dag(graph, ctx, stats=stats, max_states=max_states,
                            prune=prune, order=order)
    return optimize_brute(graph, ctx, timeout_seconds=timeout_seconds)
