"""Chaos experiments: worker-kill sweeps and speculative straggler wins.

The chaos *tests* (``tests/engine/test_chaos.py``) assert invariants;
these experiments measure the **price** of surviving cluster churn:

* :func:`ext_chaos_sweep` kills each worker at representative stage
  frontiers of three workloads and reports how much wall-clock the
  recovery machinery adds — detector gaps, re-planning charges, and
  re-executed lost work — relative to the fault-free run.
* :func:`ext_speculation_winrate` injects stragglers of increasing
  severity and reports how often a speculative backup beats the original
  attempt, and how much critical-path time the race saves.

:func:`write_benchmark` condenses both sweeps into the repo-root
``BENCH_robustness.json`` so the recovery-overhead and win-rate numbers
have a tracked trajectory across PRs.
"""

from __future__ import annotations

import json
from dataclasses import dataclass

import numpy as np

from ..cluster import ClusterConfig
from ..core.graph import ComputeGraph
from ..core.optimizer import optimize
from ..core.registry import OptimizerContext
from ..engine.dynamics import DynamicsConfig, execute_with_dynamics
from ..engine.executor import execute_plan
from ..engine.faults import FaultPlan
from ..engine.membership import WorkerTimeline, crash_at_frontier
from ..engine.recovery import RecoveryPolicy, SpeculationPolicy
from ..core.formats import row_strips, tiles
from ..engine.stages import lower
from ..obs.metrics import MetricsRegistry
from ..workloads.chains import wide_shared_dag
from ..workloads.datagen import dense_normal, spd_matrix
from ..workloads.ffnn import FFNNConfig, ffnn_full_step
from ..workloads.inverse import two_level_inverse_graph
from .harness import ExperimentTable

#: Cluster size used throughout the chaos sweeps.
NUM_WORKERS = 3

#: Beam width for the (frequent) degraded re-optimizations.
CHAOS_BEAM = 64


def _chaos_inputs(graph: ComputeGraph) -> dict[str, np.ndarray]:
    out = {}
    for v in graph.sources:
        dims = v.mtype.dims
        if len(dims) == 2 and dims[0] == dims[1]:
            out[v.name] = spd_matrix(dims[0], seed=v.vid)
        else:
            out[v.name] = dense_normal(*dims, seed=v.vid)
    return out


def chaos_workloads() -> dict[str, ComputeGraph]:
    """The three chaos workloads: fig05's FFNN step, the recursive
    inverse, and a wide DAG with heavy operand sharing."""
    return {
        "ffnn": ffnn_full_step(FFNNConfig(batch=24, features=12,
                                          hidden=10, labels=4)),
        "inverse": two_level_inverse_graph(outer=40, inner_top=12),
        "wide": wide_shared_dag(width=3, layers=2, dim=24),
    }


@dataclass(frozen=True)
class ChaosSweepRow:
    """Aggregate cost of surviving a single worker kill, per workload."""

    workload: str
    scenarios: int            #: (frontier, worker) kill sites swept
    completed: int
    mean_overhead: float      #: extra clock vs fault-free, fraction
    max_overhead: float
    mean_detector_seconds: float
    mean_replan_seconds: float
    mean_lost_work_seconds: float

    @property
    def completion_rate(self) -> float:
        return self.completed / self.scenarios if self.scenarios else 0.0


def chaos_sweep(
    graph: ComputeGraph,
    inputs: dict[str, np.ndarray],
    ctx: OptimizerContext,
    workload: str = "workload",
    frontiers: tuple[int, ...] | None = None,
) -> ChaosSweepRow:
    """Kill each worker at each sampled frontier; measure the recovery bill.

    Every completed scenario's outputs are checked against the fault-free
    run — a silent wrong answer would invalidate the overhead numbers.
    """
    plan = optimize(graph, ctx, max_states=CHAOS_BEAM)
    clean = execute_plan(plan, inputs, ctx)
    if not clean.ok:
        raise RuntimeError(f"fault-free run failed: {clean.failure}")
    clean_seconds = clean.ledger.total_seconds
    n_frontiers = len(lower(plan, ctx).frontiers())
    if frontiers is None:
        frontiers = tuple(sorted({0, 1, n_frontiers // 2, n_frontiers - 1}))

    config = DynamicsConfig(max_states=CHAOS_BEAM)
    scenarios = completed = 0
    overheads: list[float] = []
    detector: list[float] = []
    replan: list[float] = []
    lost: list[float] = []
    for frontier in frontiers:
        for worker in range(ctx.cluster.num_workers):
            scenarios += 1
            timeline = WorkerTimeline(
                ctx.cluster.num_workers,
                [crash_at_frontier(worker, frontier)])
            res = execute_with_dynamics(plan, inputs, ctx, timeline,
                                        config=config)
            if not res.ok:
                continue
            for name, expected in clean.outputs.items():
                if not np.allclose(res.outputs[name], expected):
                    raise AssertionError(
                        f"{workload}: output {name!r} diverged after "
                        f"killing w{worker}@f{frontier}")
            completed += 1
            overheads.append(res.ledger.total_seconds / clean_seconds - 1)
            detector.append(sum(r.seconds for r in res.ledger.stages
                                if r.name.startswith("detector:")))
            replan.append(res.ledger.replan_seconds)
            lost.append(sum(rep.lost_work_seconds for rep in res.replans))
    return ChaosSweepRow(
        workload, scenarios, completed,
        float(np.mean(overheads)) if overheads else float("inf"),
        float(np.max(overheads)) if overheads else float("inf"),
        float(np.mean(detector)) if detector else 0.0,
        float(np.mean(replan)) if replan else 0.0,
        float(np.mean(lost)) if lost else 0.0)


def ext_chaos_sweep() -> ExperimentTable:
    """Recovery overhead of killing any worker at representative frontiers."""
    ctx = OptimizerContext(cluster=ClusterConfig(num_workers=NUM_WORKERS))
    table = ExperimentTable(
        "ext_chaos_sweep",
        f"Chaos sweep: kill each of {NUM_WORKERS} workers at sampled stage "
        "frontiers; overhead vs the fault-free run",
        ["workload", "scenarios", "overhead", "worst", "detector s",
         "replan s", "lost-work s"])
    for name, graph in chaos_workloads().items():
        row = chaos_sweep(graph, _chaos_inputs(graph), ctx, workload=name)
        table.add_row(
            name, f"{row.completed}/{row.scenarios}",
            f"+{row.mean_overhead * 100:.0f}%",
            f"+{row.max_overhead * 100:.0f}%",
            f"{row.mean_detector_seconds:.1f}",
            f"{row.mean_replan_seconds:.1f}",
            f"{row.mean_lost_work_seconds:.1f}")
    table.add_note("all recovered outputs verified against the fault-free "
                   "run; overhead = detector gap + re-plan charge + "
                   "re-executed lost work on the shrunken cluster")
    return table


@dataclass(frozen=True)
class SpeculationRow:
    """Speculative-vs-wait outcome for one straggler severity."""

    slowdown: float
    speculations: int
    wins: int
    wait_seconds: float       #: critical path when waiting out the straggler
    race_seconds: float       #: critical path with the speculative backup

    @property
    def win_rate(self) -> float:
        return self.wins / self.speculations if self.speculations else 0.0

    @property
    def saved_fraction(self) -> float:
        if self.wait_seconds <= 0:
            return 0.0
        return 1.0 - self.race_seconds / self.wait_seconds


def _straggler_victim(ledger) -> str:
    """A charge name a scheduled straggler will actually stretch.

    Scheduled faults match by substring and fire once, on the first
    matching charge; only per-partition substages of op stages pass
    through the injector.  So the victim must be such a substage, carry
    real seconds, and not be contained in any earlier charge's name
    (else the stretch lands on a zero-second bookkeeping record and
    slows nothing).
    """
    for i, rec in enumerate(ledger.stages):
        if rec.seconds <= 0 or rec.name.count(":") < 2:
            continue
        if any(rec.name in prev.name for prev in ledger.stages[:i]):
            continue
        return rec.name
    raise RuntimeError("no straggler-eligible charge in the clean ledger")


def speculation_sweep(
    slowdowns: tuple[float, ...] = (6.0, 8.0, 12.0, 16.0),
) -> list[SpeculationRow]:
    """Race a backup against stragglers of increasing severity.

    The FFNN loads X and W1 in distributed formats (as fig05's real data
    does), so the first matmul runs several per-partition substages —
    the straggler hits one of those, exactly the granularity a slow
    worker slows.  The deadline policy is pinned above the worst healthy
    drift ratio so only injected stragglers trigger backups.  The
    no-mitigation baseline waits out the full slowdown — the fair
    comparison for the paper-style claim that speculation strictly
    shortens the critical path.
    """
    graph = ffnn_full_step(FFNNConfig(batch=128, features=128, hidden=128,
                                      labels=8, x_format=tiles(64),
                                      w1_format=row_strips(32)))
    inputs = _chaos_inputs(graph)
    ctx = OptimizerContext()
    plan = optimize(graph, ctx, max_states=CHAOS_BEAM)
    clean = execute_plan(plan, inputs, ctx)
    victim = _straggler_victim(clean.ledger)
    wait_policy = RecoveryPolicy(speculative_backups=False)
    deadline = SpeculationPolicy(min_multiplier=5.0)

    rows = []
    for slowdown in slowdowns:
        faults = FaultPlan.straggler(victim, slowdown=slowdown)
        wait = execute_plan(plan, inputs, ctx, faults=faults,
                            recovery=wait_policy)
        metrics = MetricsRegistry()
        race = execute_plan(plan, inputs, ctx, faults=faults,
                            recovery=wait_policy, speculation=deadline,
                            metrics=metrics)
        if not (wait.ok and race.ok):
            raise RuntimeError("straggler run failed unexpectedly")
        rows.append(SpeculationRow(
            slowdown,
            int(metrics.counters.get("execute.speculations", 0)),
            int(metrics.counters.get("execute.speculation_wins", 0)),
            wait.critical_path_seconds,
            race.critical_path_seconds))
    return rows


def ext_speculation_winrate() -> ExperimentTable:
    """Speculative backups vs waiting out stragglers of rising severity."""
    rows = speculation_sweep()
    table = ExperimentTable(
        "ext_speculation_winrate",
        "Speculative straggler mitigation on the FFNN step: backup races "
        "a stage slowed by the given factor",
        ["slowdown", "backups", "wins", "wait cp s", "race cp s", "saved"])
    for row in rows:
        table.add_row(f"x{row.slowdown:.0f}",
                      str(row.speculations), str(row.wins),
                      f"{row.wait_seconds:.2f}", f"{row.race_seconds:.2f}",
                      f"{row.saved_fraction * 100:.0f}%")
    table.add_note("cp = simulated critical-path seconds; the loser's time "
                   "is charged to the straggler ledger category, so total "
                   "cost stays fully attributed")
    return table


def robustness_benchmark() -> dict:
    """The numbers tracked in the repo-root ``BENCH_robustness.json``."""
    ctx = OptimizerContext(cluster=ClusterConfig(num_workers=NUM_WORKERS))
    recovery = {}
    for name, graph in chaos_workloads().items():
        row = chaos_sweep(graph, _chaos_inputs(graph), ctx, workload=name)
        recovery[name] = {
            "scenarios": row.scenarios,
            "completion_rate": row.completion_rate,
            "mean_overhead_frac": round(row.mean_overhead, 4),
            "max_overhead_frac": round(row.max_overhead, 4),
            "mean_detector_seconds": round(row.mean_detector_seconds, 4),
            "mean_replan_seconds": round(row.mean_replan_seconds, 4),
            "mean_lost_work_seconds": round(row.mean_lost_work_seconds, 4),
        }
    spec_rows = speculation_sweep()
    speculations = sum(r.speculations for r in spec_rows)
    wins = sum(r.wins for r in spec_rows)
    return {
        "benchmark": "robustness",
        "cluster_workers": NUM_WORKERS,
        "recovery_overhead": recovery,
        "speculation": {
            "slowdowns": [r.slowdown for r in spec_rows],
            "speculations": speculations,
            "wins": wins,
            "win_rate": round(wins / speculations, 4) if speculations else 0.0,
            "mean_saved_frac": round(
                float(np.mean([r.saved_fraction for r in spec_rows])), 4),
        },
    }


def write_benchmark(path: str) -> dict:
    """Write :func:`robustness_benchmark` to ``path`` as stable JSON."""
    data = robustness_benchmark()
    with open(path, "w") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return data


CHAOS_EXPERIMENTS = {
    "ext_chaos_sweep": ext_chaos_sweep,
    "ext_speculation_winrate": ext_speculation_winrate,
}
