"""Service-layer batch planning: cache, single-flight and admission.

``PlannerService.optimize_batch`` must fingerprint a batch as the
ordered composition of its members' request fingerprints, serve repeats
from the plan cache with every profile marked ``cache_hit=True``, and
count under ``planner.batch.*``.  ``AdmissionBatcher`` must coalesce
concurrent solo submissions with identical knobs into one batch call
and hand each caller its own per-query plan.
"""

import threading

import pytest

from repro.core.batch import BatchPlan
from repro.obs.metrics import MetricsRegistry
from repro.service import AdmissionBatcher, PlannerService, batch_fingerprint
from repro.workloads import (
    amazoncat_config,
    ffnn_forward,
    ffnn_full_step,
    mm_chain_graph,
)

MAX_STATES = 300


def _pair():
    cfg = amazoncat_config(batch=2000, hidden=8000)
    return [ffnn_forward(cfg), ffnn_full_step(cfg)]


class TestServiceBatch:
    def test_repeat_batch_served_from_cache(self):
        metrics = MetricsRegistry()
        svc = PlannerService(metrics=metrics)
        graphs = _pair()
        cold = svc.optimize_batch(graphs, max_states=MAX_STATES)
        warm = svc.optimize_batch(graphs, max_states=MAX_STATES)

        assert isinstance(cold, BatchPlan) and isinstance(warm, BatchPlan)
        assert not cold.merged.profile.cache_hit
        assert warm.merged.profile.cache_hit
        assert all(q.plan.profile.cache_hit for q in warm.queries)
        assert warm.merged.total_seconds == cold.merged.total_seconds

        assert svc.stats()["batch"] == {"requests": 2, "hits": 1,
                                        "misses": 1}
        counters = metrics.counters
        assert counters["planner.batch.requests"] == 2
        assert counters["planner.batch.queries"] == 4
        assert counters["planner.batch.cache.hits"] == 1
        assert counters["planner.batch.cache.misses"] == 1

    def test_batch_and_solo_keys_never_collide(self):
        """A singleton batch and the equivalent solo request are distinct
        cache entries (distinct fingerprint domains)."""
        svc = PlannerService()
        g = mm_chain_graph(1)
        solo = svc.optimize(g, max_states=MAX_STATES)
        batch = svc.optimize_batch([g], max_states=MAX_STATES)
        assert batch.merged.total_seconds == solo.total_seconds
        # Both were cold: the solo hit did not satisfy the batch lookup.
        assert svc.stats()["misses"] == 1
        assert svc.stats()["batch"]["misses"] == 1

    def test_knob_changes_miss_the_cache(self):
        svc = PlannerService()
        graphs = _pair()
        svc.optimize_batch(graphs, max_states=MAX_STATES)
        svc.optimize_batch(graphs, max_states=MAX_STATES,
                           frontier="object")
        assert svc.stats()["batch"] == {"requests": 2, "hits": 0,
                                        "misses": 2}

    def test_bad_knobs_rejected_before_fingerprinting(self):
        svc = PlannerService()
        with pytest.raises(ValueError, match="at least one"):
            svc.optimize_batch([])
        with pytest.raises(ValueError, match="unknown algorithm"):
            svc.optimize_batch(_pair(), algorithm="warp")
        with pytest.raises(ValueError, match="unknown frontier"):
            svc.optimize_batch(_pair(), frontier="arry")
        with pytest.raises(ValueError, match="rewrites"):
            svc.optimize_batch(_pair(), rewrites="pipelin")
        assert svc.stats()["batch"]["requests"] == 0

    def test_batch_fingerprint_is_order_sensitive(self):
        """Queries are positional (callers get plans back by index), so
        a reordered batch is a different request."""
        svc = PlannerService()
        graphs = _pair()
        fps = []
        for g in graphs:
            ctx = svc.resolve_context(g, None)
            from repro.core.fingerprint import request_fingerprint
            from repro.core.optimizer import rewrite_stage
            rewritten, _ = rewrite_stage(g, ctx, "none", svc.tracer)
            fps.append(request_fingerprint(
                g, rewritten, ctx, algorithm="auto", timeout_seconds=None,
                max_states=MAX_STATES, rewrites="none", prune=None,
                order="class-size", frontier="array"))
        assert batch_fingerprint(fps).key != \
            batch_fingerprint(list(reversed(fps))).key
        # And a batch never shares a key with its own sole member.
        assert batch_fingerprint(fps[:1]).key != fps[0].key


class TestAdmissionBatcher:
    def test_concurrent_submissions_coalesce_into_one_batch(self):
        metrics = MetricsRegistry()
        svc = PlannerService(metrics=metrics)
        # A full window closes early, so a long window stays deterministic.
        batcher = AdmissionBatcher(svc, window_seconds=30.0, max_batch=2)
        graphs = _pair()
        plans = [None, None]
        errors = []

        def submit(i):
            try:
                plans[i] = batcher.submit(graphs[i],
                                          max_states=MAX_STATES)
            except BaseException as exc:  # pragma: no cover - debug aid
                errors.append(exc)

        threads = [threading.Thread(target=submit, args=(i,))
                   for i in range(2)]
        for t in threads:
            t.start()
        for t in threads:
            t.join(timeout=120)
        assert not errors
        assert all(p is not None for p in plans)
        assert batcher.stats() == {"batches": 1, "coalesced": 1}
        assert svc.stats()["batch"]["requests"] == 1
        for plan in plans:
            assert plan.profile.batch_queries == 2
            assert plan.profile.shared_subplans  # the shared forward pass

    def test_solo_submission_degenerates_to_singleton_batch(self):
        svc = PlannerService()
        batcher = AdmissionBatcher(svc, window_seconds=0.0, max_batch=4)
        plan = batcher.submit(mm_chain_graph(1), max_states=MAX_STATES)
        assert plan.profile.batch_queries == 1
        assert batcher.stats() == {"batches": 1, "coalesced": 0}

    def test_different_knobs_never_batch_together(self):
        svc = PlannerService()
        batcher = AdmissionBatcher(svc, window_seconds=0.0, max_batch=4)
        batcher.submit(mm_chain_graph(1), max_states=MAX_STATES)
        batcher.submit(mm_chain_graph(1), max_states=MAX_STATES,
                       frontier="object")
        assert batcher.stats()["batches"] == 2

    def test_planner_errors_reach_every_rider(self):
        svc = PlannerService()
        batcher = AdmissionBatcher(svc, window_seconds=0.0, max_batch=4)
        with pytest.raises(ValueError, match="unknown frontier"):
            batcher.submit(mm_chain_graph(1), frontier="bogus")

    def test_bad_construction_rejected(self):
        svc = PlannerService()
        with pytest.raises(ValueError, match="max_batch"):
            AdmissionBatcher(svc, max_batch=0)
        with pytest.raises(ValueError, match="window_seconds"):
            AdmissionBatcher(svc, window_seconds=-1.0)
