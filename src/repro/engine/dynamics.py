"""Cluster dynamics: degraded-mode re-planning under worker churn.

The paper optimizes a plan for a *fixed* cluster; this module runs a plan
on a cluster whose membership changes mid-execution.  A scripted or seeded
:class:`~repro.engine.membership.WorkerTimeline` says when workers crash,
slow down, or rejoin; :func:`execute_with_dynamics` drives the plan one
stage-graph frontier at a time and, at every frontier boundary, consumes
the events that simulated time (or that frontier index) has reached:

* a **crash** surfaces through the simulated heartbeat detector — the gap
  between the crash and its declaration is charged to the ledger as
  recovery overhead (``detector:wN``) — then the driver takes stock:
  every intermediate with a block homed on the dead worker is lost, its
  productive work is re-labelled as recovery cost, and the *pending*
  computation is re-planned against the shrunken cluster;
* re-planning itself costs time, charged to the dedicated ``"replan"``
  ledger category, and is **never worse** than not re-planning: the
  driver evaluates both a fresh optimization of the residual graph and a
  "carry-on" plan that keeps every surviving choice from the old plan,
  then picks the cheaper (if optimization of the residual is infeasible
  or costlier, the old choices simply continue on the survivors);
* a **slowdown** drags on every later frontier: the degraded worker's
  share of each frontier's work is stretched by its factor, charged as
  straggler time (``slow:wN``);
* a **rejoin** grows the cluster back; pending work is re-planned (again
  never-worse) so later stages can exploit the returned capacity.

Losing the *last* worker is a cluster failure, not a resize — the run
returns a structured failure, mirroring
:class:`~repro.engine.executor.ExecutionResult`.

Determinism: the timeline is a pure function of its config, frontier
boundaries are scheduler-independent, and all charges happen at those
boundaries in event order — so the final ledger is bit-identical across
:class:`~repro.engine.scheduler.SequentialScheduler` and
:class:`~repro.engine.scheduler.ThreadPoolScheduler`, like every other
path through this engine.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from ..core.annotation import Annotation, AnnotationError, Plan, make_plan
from ..core.graph import VertexId
from ..core.optimizer import optimize
from ..core.registry import OptimizerContext
from ..core.tree_dp import OptimizationError
from ..cost.sparsity import observed_sparsity
from ..obs.drift import DriftReport
from ..obs.metrics import MetricsRegistry
from ..obs.tracer import Tracer, as_tracer
from .faults import FaultSource, as_injector
from .intermediate import IntermediateStore, harvest_state, preload_state
from .ledger import (
    RECOVERY,
    REPLAN,
    STRAGGLER,
    WORK,
    EngineFailure,
    StageRecord,
    TrafficLedger,
)
from .membership import (
    HeartbeatConfig,
    HeartbeatDetector,
    MembershipEvent,
    MembershipEventKind,
    MembershipView,
    WorkerTimeline,
)
from .recovery import (
    DEFAULT_RECOVERY,
    RecoveryPolicy,
    SpeculationPolicy,
    plan_context,
)
from .reopt import residual_graph
from .scheduler import (
    ExecutionState,
    Scheduler,
    SequentialScheduler,
)
from .stages import OpStage, TransformStage, lower
from .storage import StoredMatrix, assemble


@dataclass(frozen=True)
class DynamicsConfig:
    """Knobs of the dynamics driver.

    ``replan_cost_seconds`` is the (deterministic) simulated cost of one
    re-planning pass, charged to the ``"replan"`` ledger category;
    ``reoptimize=False`` skips the fresh optimization candidate and always
    carries the old plan's choices onto the survivors; ``max_states``
    beam-limits the re-optimization search; ``checkpoint_dir`` writes a
    durable :mod:`~repro.engine.checkpoint` snapshot after every frontier.
    """

    heartbeat: HeartbeatConfig = field(default_factory=HeartbeatConfig)
    replan_cost_seconds: float = 2.0
    reoptimize: bool = True
    max_states: int | None = None
    checkpoint_dir: str | Path | None = None

    def __post_init__(self) -> None:
        if self.replan_cost_seconds < 0:
            raise ValueError("replan_cost_seconds must be >= 0")


@dataclass
class DynamicsEventReport:
    """One membership event as the driver saw it."""

    worker: int
    kind: str
    at_seconds: float
    #: Crash-to-declaration wait charged by the heartbeat detector
    #: (crash events only).
    detector_seconds: float = 0.0
    #: Whether the event changed the membership view (a crash of an
    #: already-dead worker does not).
    applied: bool = True


@dataclass
class ReplanReport:
    """One degraded-mode (or rejoin) re-planning decision."""

    epoch: int
    alive: tuple[int, ...]
    #: Productive seconds re-labelled as recovery because the dead worker
    #: held the only copy of an intermediate an output still needs.
    lost_work_seconds: float
    #: Evaluated cost of carrying the old plan's choices onto the
    #: survivors (None when infeasible there).
    carry_on_seconds: float | None
    #: Evaluated cost of freshly optimizing the residual graph (None when
    #: skipped or infeasible).
    reoptimized_seconds: float | None
    #: ``"carry-on"`` or ``"reoptimized"`` — always the cheaper one.
    chosen: str
    replan_cost_seconds: float


@dataclass
class DynamicsResult:
    """Outcome of :func:`execute_with_dynamics`."""

    ok: bool
    outputs: dict[str, np.ndarray]
    ledger: TrafficLedger
    events: list[DynamicsEventReport]
    replans: list[ReplanReport]
    #: Number of plan epochs executed (1 = no re-planning happened).
    epochs: int
    #: The plan each epoch ran (``plans[0]`` is the input plan).
    plans: list[Plan]
    failure: str | None = None

    @property
    def total_seconds(self) -> float:
        return self.ledger.total_seconds

    @property
    def work_seconds(self) -> float:
        return self.ledger.work_seconds

    @property
    def fault_seconds(self) -> float:
        """Everything not productive work: recovery + straggler + replan."""
        return self.ledger.recovery_seconds

    def output(self) -> np.ndarray:
        if not self.ok:
            raise RuntimeError(f"dynamics run failed: {self.failure}")
        if len(self.outputs) != 1:
            raise ValueError(f"graph has {len(self.outputs)} outputs; "
                             "use .outputs[name]")
        return next(iter(self.outputs.values()))


class _Progress:
    """What the driver knows about the *original* graph so far.

    Everything is keyed by original-graph vertex ids, no matter how many
    residual re-plans have renumbered them since — each epoch's
    ``mapping`` translates.  ``records`` holds live references to the
    ledger's :class:`StageRecord` objects, so a later worker death can
    re-label work as lost after it was already merged.
    """

    def __init__(self, graph, inputs: dict[str, np.ndarray]) -> None:
        self.graph = graph
        self.values: dict[VertexId, np.ndarray] = {}
        self.formats: dict[VertexId, object] = {}
        self.sparsity: dict[VertexId, float] = {}
        self.records: dict[VertexId, list[StageRecord]] = {}
        self.durable: set[VertexId] = set()
        for v in graph.sources:
            if v.name not in inputs:
                raise KeyError(f"no input provided for source {v.name!r}")
            self.values[v.vid] = inputs[v.name]
            self.formats[v.vid] = v.format
            self.sparsity[v.vid] = observed_sparsity(inputs[v.name])
            # True inputs live in durable storage (the paper's HDFS/RDBMS
            # load step): losing a worker never loses them.
            self.durable.add(v.vid)

    @property
    def computed(self) -> set[VertexId]:
        return set(self.values)

    def pending(self) -> set[VertexId]:
        """Original vids an output still needs but no one holds."""
        needed: set[VertexId] = set()
        stack = [out.vid for out in self.graph.outputs]
        while stack:
            vid = stack.pop()
            if vid in needed:
                continue
            needed.add(vid)
            if vid not in self.values:
                stack.extend(self.graph.vertex(vid).inputs)
        return {vid for vid in needed if vid not in self.values}

    def register(self, orig: VertexId, stored: StoredMatrix,
                 records: list[StageRecord]) -> None:
        value = assemble(stored)
        self.values[orig] = value
        self.formats[orig] = stored.fmt
        self.sparsity[orig] = observed_sparsity(value)
        self.records.setdefault(orig, []).extend(records)

    def lose(self, orig: VertexId) -> float:
        """Forget a lost vertex; its productive work becomes recovery
        cost.  Returns the re-labelled seconds."""
        self.values.pop(orig, None)
        self.formats.pop(orig, None)
        self.sparsity.pop(orig, None)
        lost = 0.0
        for rec in self.records.pop(orig, ()):
            if rec.category == WORK:
                rec.category = RECOVERY
                lost += rec.seconds
        return lost


def _carry_on_plan(residual, inverse: dict[VertexId, VertexId],
                   impls, transforms, ctx: OptimizerContext) -> Plan | None:
    """Map the surviving choices of earlier plans onto the residual graph.

    ``impls``/``transforms`` remember, per original vertex/edge, the last
    implementation and format transform any epoch's plan chose.  If every
    pending vertex still has a remembered choice and the annotation is
    feasible on the (possibly shrunken) cluster, this is the do-nothing
    baseline that makes re-planning never worse.
    """
    ann = Annotation()
    try:
        for v in residual.vertices:
            if v.is_source:
                continue
            orig = inverse[v.vid]
            ann.impls[v.vid] = impls[orig]
            for edge in residual.in_edges(v.vid):
                key = (inverse[edge.src], orig, edge.arg_pos)
                ann.transforms[edge] = transforms[key]
        return make_plan(residual, ann, ctx, "carry-on")
    except (KeyError, AnnotationError):
        return None


def _remember_choices(plan: Plan, inverse: dict[VertexId, VertexId],
                      impls, transforms) -> None:
    """Record a plan's choices in original-graph terms for carry-on."""
    for vid, impl in plan.annotation.impls.items():
        impls[inverse[vid]] = impl
    for edge, choice in plan.annotation.transforms.items():
        transforms[(inverse[edge.src], inverse[edge.dst],
                    edge.arg_pos)] = choice


def execute_with_dynamics(
    plan: Plan,
    inputs: dict[str, np.ndarray],
    ctx: OptimizerContext,
    timeline: WorkerTimeline,
    config: DynamicsConfig | None = None,
    faults: FaultSource = None,
    recovery: RecoveryPolicy | None = None,
    scheduler: Scheduler | None = None,
    tracer: Tracer | None = None,
    metrics: MetricsRegistry | None = None,
    speculation: SpeculationPolicy | None = None,
    drift_hint: DriftReport | None = None,
    store: IntermediateStore | None = None,
) -> DynamicsResult:
    """Execute ``plan`` while ``timeline``'s membership events play out.

    See the module docstring for the model.  ``faults``, ``recovery``,
    ``scheduler``, ``speculation`` and the observability hooks mean the
    same as in :func:`~repro.engine.executor.execute_plan` — task-level
    fault injection and straggler speculation compose freely with
    cluster-level churn.

    ``store`` attaches a shared
    :class:`~repro.engine.intermediate.IntermediateStore`: every epoch
    first serves cached subplans (so a re-plan after a crash accounts
    for already-materialized intermediates), a dead worker's cached
    blocks are invalidated when the detector fires, and each epoch's
    fresh results are offered back to the store.
    """
    if timeline.num_workers != ctx.cluster.num_workers:
        raise ValueError(
            f"timeline models {timeline.num_workers} workers but the "
            f"cluster has {ctx.cluster.num_workers}")
    config = config if config is not None else DynamicsConfig()
    policy = recovery if recovery is not None else DEFAULT_RECOVERY
    sched = scheduler if scheduler is not None else SequentialScheduler()
    tracer = as_tracer(tracer)
    injector = as_injector(faults, ctx.cluster.num_workers)
    detector = HeartbeatDetector(config.heartbeat)

    graph = plan.graph
    ledger = TrafficLedger(ctx.cluster, ctx.weights)
    view = MembershipView(timeline.num_workers)
    progress = _Progress(graph, inputs)
    events: list[DynamicsEventReport] = []
    replans: list[ReplanReport] = []
    plans: list[Plan] = [plan]

    # Per-original-vertex/edge choice memory for the carry-on candidate.
    impls: dict[VertexId, object] = {}
    transforms: dict[tuple[VertexId, VertexId, int], object] = {}
    _remember_choices(plan, {v: v for v in graph.vertex_ids}, impls,
                      transforms)

    current_plan = plan
    epoch_ctx = ctx
    # original vid -> current epoch-graph vid (identity for epoch 0).
    mapping: dict[VertexId, VertexId] = {v: v for v in graph.vertex_ids}
    last_time = 0.0       # watermark for timed events
    global_frontier = 0   # frontier index across all epochs
    epoch = 0

    def fail(reason: str) -> DynamicsResult:
        return DynamicsResult(False, {}, ledger, events, replans,
                              epoch + 1, plans, failure=reason)

    with tracer.span("dynamics", kind="dynamics",
                     workers=timeline.num_workers,
                     events=len(timeline.events)) as dyn_span:
        while True:
            epoch_alive = sorted(view.alive)
            slot_of = {w: i for i, w in enumerate(epoch_alive)}
            inverse = {nv: ov for ov, nv in mapping.items()}
            sgraph = lower(current_plan, epoch_ctx, tracer=tracer)
            state = ExecutionState(sgraph, epoch_ctx, injector=injector,
                                   policy=policy, tracer=tracer,
                                   parent_span=dyn_span, metrics=metrics,
                                   speculation=speculation, drift=drift_hint)
            values = {current_plan.graph.vertex(mapping[ov]).name:
                      progress.values[ov]
                      for ov in progress.values
                      if mapping.get(ov) is not None
                      and current_plan.graph.vertex(mapping[ov]).is_source}
            state.seed_sources(values)
            if store is not None:
                preload_state(state, store)

            interrupted = False
            crashed: list[MembershipEvent] = []
            frontiers = sgraph.frontiers()
            for fi, sids in enumerate(frontiers):
                # Preload (and checkpoint resume) may have completed part
                # of the frontier already; run only what remains.
                pending_sids = [sid for sid in sids
                                if sid not in state.completed]
                try:
                    if pending_sids:
                        sched.run_stages(state, pending_sids)
                except EngineFailure as failure:
                    state.merge_into(ledger)
                    return fail(str(failure))
                epoch_seconds = sum(r.seconds
                                    for recs in state.records.values()
                                    for r in recs)
                now = ledger.total_seconds + epoch_seconds
                if config.checkpoint_dir is not None:
                    from .checkpoint import checkpoint

                    path = Path(config.checkpoint_dir)
                    path.mkdir(parents=True, exist_ok=True)
                    checkpoint(state).save(
                        path / f"epoch{epoch:02d}_frontier{fi:02d}.json")
                # A degraded worker drags its share of the frontier out.
                frontier_work = sum(
                    r.seconds for sid in sids
                    for r in state.records.get(sid, ())
                    if r.category == WORK)
                for worker in sorted(view.slow_workers):
                    if worker not in slot_of:
                        continue
                    factor = view.slowdown(worker)
                    drag = frontier_work * (factor - 1.0) / len(epoch_alive)
                    if drag > 0:
                        ledger.charge_overhead(
                            f"slow:w{worker}@f{global_frontier}", drag,
                            STRAGGLER)
                pending_events = (timeline.timed_between(last_time, now)
                                  + timeline.at_frontier(global_frontier))
                global_frontier += 1
                last_time = now
                if not pending_events:
                    continue
                for event in pending_events:
                    changed = view.apply(event)
                    at = event.time if event.time is not None else now
                    report = DynamicsEventReport(event.worker,
                                                 event.kind.value, at,
                                                 applied=changed)
                    events.append(report)
                    if not changed:
                        continue
                    if event.kind is MembershipEventKind.CRASH:
                        detected = detector.detection_time(at)
                        wait = max(0.0, detected - now)
                        report.detector_seconds = wait
                        with tracer.span(f"detect:w{event.worker}",
                                         kind="detector", parent=dyn_span,
                                         worker=event.worker,
                                         crash_seconds=at,
                                         detected_seconds=detected,
                                         wait_seconds=wait):
                            if wait > 0:
                                ledger.charge_overhead(
                                    f"detector:w{event.worker}", wait,
                                    RECOVERY)
                        if metrics is not None:
                            metrics.count("dynamics.crashes")
                            metrics.count("dynamics.detector_seconds", wait)
                        if view.n_alive == 0:
                            state.merge_into(ledger)
                            return fail(
                                "lost the last worker: cluster failure")
                        crashed.append(event)
                        interrupted = True
                    elif event.kind is MembershipEventKind.REJOIN:
                        if metrics is not None:
                            metrics.count("dynamics.rejoins")
                        interrupted = True
                    else:
                        if metrics is not None:
                            metrics.count("dynamics.slowdowns")
                if interrupted:
                    break

            state.merge_into(ledger)
            if store is not None:
                harvest_state(state, store, ledger)
            # Bank everything this epoch finished, in stage-id order.
            # Preload marks cache-covered dead code completed without a
            # lineage value; there is nothing to bank for those.
            for stage in sgraph.stages:
                if stage.sid not in state.completed:
                    continue
                if isinstance(stage, OpStage):
                    stored = state.lineage.matrices.get(stage.vertex)
                    if stored is None:
                        continue
                    progress.register(inverse[stage.vertex], stored,
                                      state.records.get(stage.sid, []))

            if not interrupted:
                break

            # ---- take stock of the damage -------------------------------
            dead_slots = {slot_of[e.worker] for e in crashed
                          if e.worker in slot_of}
            if store is not None and dead_slots:
                # The dead workers' partitions of cached results are
                # gone; recovery must fall back to recompute.
                store.invalidate_workers(dead_slots)
            lost_seconds = 0.0
            if dead_slots:
                for orig in sorted(progress.computed):
                    if orig in progress.durable:
                        continue
                    stored = state.lineage.matrices.get(mapping.get(orig))
                    if stored is None:
                        continue
                    homes = set(stored.relation.home.values())
                    if homes & dead_slots:
                        lost_seconds += progress.lose(orig)
                # Transform outputs whose consumer never ran are gone too.
                for stage in sgraph.stages:
                    if (isinstance(stage, TransformStage)
                            and stage.sid in state.completed
                            and inverse[stage.edge.dst]
                            not in progress.values):
                        stored = state.stage_values.get(stage.sid)
                        if stored is None:
                            continue
                        if set(stored.relation.home.values()) & dead_slots:
                            for rec in state.records.get(stage.sid, ()):
                                if rec.category == WORK:
                                    rec.category = RECOVERY
                                    lost_seconds += rec.seconds
            if metrics is not None and lost_seconds:
                metrics.count("dynamics.lost_work_seconds", lost_seconds)

            pending = progress.pending()
            if not pending:
                break  # every output survived; nothing left to plan

            # ---- re-plan the residual, never worse ----------------------
            degraded_ctx = plan_context(ctx, workers=view.n_alive)
            residual, mapping, _ = residual_graph(
                graph, dict(progress.formats), dict(progress.sparsity),
                prune=True)
            inverse = {nv: ov for ov, nv in mapping.items()}
            carry = _carry_on_plan(residual, inverse, impls, transforms,
                                   degraded_ctx)
            fresh: Plan | None = None
            if config.reoptimize:
                try:
                    fresh = optimize(residual, degraded_ctx,
                                     max_states=config.max_states)
                except (OptimizationError, AnnotationError):
                    fresh = None
            candidates = [p for p in (fresh, carry) if p is not None]
            if not candidates:
                return fail(
                    f"no feasible plan for the remaining "
                    f"{len(pending)} vertices on {view.n_alive} workers")
            chosen = min(candidates, key=lambda p: p.cost.total_seconds)
            label = "reoptimized" if chosen is fresh else "carry-on"
            ledger.charge_overhead(f"replan:epoch{epoch}",
                                   config.replan_cost_seconds, REPLAN)
            with tracer.span(f"replan:epoch{epoch}", kind="replan",
                             parent=dyn_span, alive=view.n_alive,
                             lost_work_seconds=lost_seconds,
                             carry_on_seconds=(
                                 carry.cost.total_seconds if carry
                                 else None),
                             reoptimized_seconds=(
                                 fresh.cost.total_seconds if fresh
                                 else None),
                             chosen=label):
                pass
            if metrics is not None:
                metrics.count("dynamics.replans")
                metrics.count("dynamics.replan_seconds",
                              config.replan_cost_seconds)
            replans.append(ReplanReport(
                epoch, tuple(sorted(view.alive)), lost_seconds,
                carry.cost.total_seconds if carry else None,
                fresh.cost.total_seconds if fresh else None,
                label, config.replan_cost_seconds))
            _remember_choices(chosen, inverse, impls, transforms)
            current_plan = chosen
            epoch_ctx = degraded_ctx
            plans.append(chosen)
            epoch += 1

        missing = progress.pending()
        if missing:
            return fail(f"run ended with {len(missing)} outputs "
                        "never computed")
        outputs = {out.name: progress.values[out.vid]
                   for out in graph.outputs}
        dyn_span.set(epochs=epoch + 1, replans=len(replans),
                     total_seconds=ledger.total_seconds)
    return DynamicsResult(True, outputs, ledger, events, replans,
                          epoch + 1, plans)
