"""Logical rewrite layer: cost-guided, semantics-preserving graph passes
that run between ``lang`` graph construction and physical optimization."""

from .base import GraphRewriter, PassReport, PipelineReport, RewritePass, \
    op_cost
from .chain import ReassociatePass
from .cse import CSEPass, structural_cse
from .fusion import FusionPass
from .pipeline import DEFAULT_PASS_ORDER, PASS_REGISTRY, PlanPipeline, \
    RewriteSpec, resolve_passes
from .pushdown import ScalarPushdownPass, TransposePushdownPass

__all__ = [
    "CSEPass",
    "DEFAULT_PASS_ORDER",
    "FusionPass",
    "GraphRewriter",
    "PASS_REGISTRY",
    "PassReport",
    "PipelineReport",
    "PlanPipeline",
    "ReassociatePass",
    "RewritePass",
    "RewriteSpec",
    "ScalarPushdownPass",
    "TransposePushdownPass",
    "op_cost",
    "resolve_passes",
    "structural_cse",
]
