"""Equality-saturation rewrite engine (SPORES-style) over compute graphs.

The e-graph engine is the alternative to the ordered pass pipeline in
:mod:`repro.core.rewrites`: instead of applying rewrites destructively in a
fixed order, it grows an e-graph of equivalent terms from one shared rule
table and extracts the catalog-cheapest represented graph.  Select it with
``optimize(..., rewrites="egraph")``.

Import order matters: ``egraph`` and ``rules`` must load before
``saturate``/``extract`` so the cycle with :mod:`repro.core.rewrites`
(which derives its pass order from the rule table) resolves from either
entry point.
"""

from .egraph import EClass, EGraph, EGraphError, ENode
from .rules import (
    PIPELINE_PASS_ORDER,
    RULE_TABLE,
    RULESET_VERSION,
    SATURATION_ONLY_RULES,
    RewriteRule,
)
from .extract import extract
from .saturate import (
    DEFAULT_BUDGET,
    SaturationBudget,
    saturate,
    saturate_graph,
)

__all__ = [
    "EClass",
    "EGraph",
    "EGraphError",
    "ENode",
    "PIPELINE_PASS_ORDER",
    "RULE_TABLE",
    "RULESET_VERSION",
    "SATURATION_ONLY_RULES",
    "RewriteRule",
    "extract",
    "DEFAULT_BUDGET",
    "SaturationBudget",
    "saturate",
    "saturate_graph",
]
