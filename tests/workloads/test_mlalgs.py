"""End-to-end tests for the classic ML/LA workloads: every workload's
optimized plan executes through the engine and matches its numpy reference,
under both the tree DP and the frontier algorithm where applicable."""

import numpy as np
import pytest

from repro.core import OptimizerContext, optimize
from repro.engine import execute_plan
from repro.workloads.mlalgs import (
    ALL_WORKLOADS,
    linear_regression,
    logistic_regression_step,
    power_iteration,
    ridge_gradient_descent,
)

CTX = OptimizerContext()


def _check(workload, seed=0, atol=1e-8):
    plan = optimize(workload.graph, OptimizerContext(), max_states=500)
    inputs = workload.make_inputs(seed)
    result = execute_plan(plan, inputs, CTX)
    assert np.allclose(result.output(), workload.reference(inputs),
                       atol=atol), workload.name
    return plan


class TestCorrectness:
    def test_linear_regression(self):
        _check(linear_regression(80, 30))

    def test_logistic_regression_step(self):
        _check(logistic_regression_step(100, 20))

    def test_ridge_gradient_descent(self):
        _check(ridge_gradient_descent(60, 25, steps=3))

    def test_power_iteration(self):
        _check(power_iteration(50, steps=4))

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_multiple_seeds(self, seed):
        _check(logistic_regression_step(50, 10), seed=seed)


class TestStructure:
    def test_linear_regression_shares_transpose(self):
        g = linear_regression(1000, 200).graph
        assert not g.is_tree_shaped()
        transposes = [v for v in g.inner_vertices
                      if v.op.name == "transpose"]
        assert len(transposes) == 1
        assert g.out_degree(transposes[0].vid) == 2

    def test_unrolled_descent_depth_scales(self):
        short = ridge_gradient_descent(100, 20, steps=2).graph
        long = ridge_gradient_descent(100, 20, steps=5).graph
        assert len(long) > len(short)

    def test_power_iteration_is_chain_over_shared_a(self):
        g = power_iteration(100, steps=3).graph
        a = next(v for v in g.sources if v.name == "A")
        assert g.out_degree(a.vid) == 3


class TestPlanning:
    @pytest.mark.parametrize("builder", ALL_WORKLOADS)
    def test_every_workload_optimizes_at_scale(self, builder):
        """Paper-scale shapes plan quickly and finitely."""
        workload = builder(100_000, 500) if builder is not power_iteration \
            else builder(20_000)
        plan = optimize(workload.graph, OptimizerContext(), max_states=500)
        assert np.isfinite(plan.total_seconds)
        assert plan.total_seconds > 0

    def test_auto_beats_all_tile_on_regression(self):
        from repro.baselines import plan_all_tile
        workload = linear_regression(200_000, 2000)
        ctx = OptimizerContext()
        auto = optimize(workload.graph, ctx, max_states=500)
        tile = plan_all_tile(workload.graph, ctx)
        assert auto.total_seconds <= tile.total_seconds
