"""Extension experiments: the paper's future-work features, measured.

Three experiments beyond the paper's evaluation, each quantifying one of
the implemented extensions:

* ``ext_sketch_refinement`` — planning with MNC-sketch-refined sparsity
  (paper §7's Sommer-et-al. integration) vs. the scalar estimator, on a
  structured-sparse operation chain;
* ``ext_adaptive_reopt`` — mid-execution re-optimization (paper §7's
  re-optimization loop) vs. running the initial plan to completion, when
  input sparsity was badly misdeclared;
* ``ext_gpu_catalog`` — the §4.2 hardware-aware catalog: the same
  computation planned with and without GPU implementations available.
"""

from __future__ import annotations

import numpy as np

from ..cluster import ClusterConfig, pliny_cluster
from ..core.accelerators import gpu_implementations
from ..core.annotation import make_plan
from ..core.graph import ComputeGraph
from ..core.implementations import DEFAULT_IMPLEMENTATIONS
from ..core.registry import OptimizerContext
from ..cost.refine import refine_graph, sketches_from_inputs
from ..lang import build, input_matrix, relu
from .harness import ExperimentTable, plan_with_service


# ----------------------------------------------------------------------
# Sketch-refined planning
# ----------------------------------------------------------------------
def _structured_sparse(rows: int, cols: int, seed: int) -> np.ndarray:
    """Rows with wildly varying density — the scalar estimator's nemesis."""
    rng = np.random.default_rng(seed)
    density = rng.random(rows) ** 8
    return rng.standard_normal((rows, cols)) * \
        (rng.random((rows, cols)) < density[:, None])


#: A low-latency cluster so the compute/traffic differences the extensions
#: target are not drowned by per-stage scheduling latency.
_FAST_CLUSTER = ClusterConfig(stage_latency_seconds=0.05)


def _sparse_chain(n: int, declared_sparsity: float):
    a = input_matrix("A", n, n, sparsity=declared_sparsity)
    b = input_matrix("B", n, n, sparsity=declared_sparsity)
    out = relu(((a * b) @ b) @ b)
    out.name = "out"
    return build(out)


def ext_sketch_refinement() -> ExperimentTable:
    """Scalar vs MNC-refined sparsity estimates for planning."""
    n = 6000
    data = {"A": _structured_sparse(n, n, 1),
            "B": _structured_sparse(n, n, 2)}
    declared = float(np.count_nonzero(data["A"])) / data["A"].size
    graph = _sparse_chain(n, declared)
    refined = refine_graph(graph, sketches_from_inputs(data))

    scalar_plan = plan_with_service(
        graph, OptimizerContext(cluster=_FAST_CLUSTER), max_states=500)
    refined_plan = plan_with_service(
        refined, OptimizerContext(cluster=_FAST_CLUSTER), max_states=500)

    # Judge both *annotations* under the refined (closer-to-truth) types.
    scalar_on_truth = make_plan(refined, scalar_plan.annotation,
                                OptimizerContext(cluster=_FAST_CLUSTER),
                                "scalar-annotations",
                                allow_infeasible=True)

    table = ExperimentTable(
        "ext_sketch_refinement",
        "Planning with scalar vs MNC-sketch sparsity estimates "
        "(structured sparse chain)",
        ["estimator", "estimated mid-chain sparsity",
         "plan cost under refined types"])
    mid_scalar = graph.vertices[3].mtype.sparsity
    mid_refined = refined.vertices[3].mtype.sparsity
    table.add_row("scalar (paper prototype)", f"{mid_scalar:.4f}",
                  f"{scalar_on_truth.total_seconds:.2f}s")
    table.add_row("MNC sketches (paper §7 proposal)", f"{mid_refined:.4f}",
                  f"{refined_plan.total_seconds:.2f}s")
    return table


# ----------------------------------------------------------------------
# Adaptive re-optimization
# ----------------------------------------------------------------------
def ext_adaptive_reopt() -> ExperimentTable:
    """Static plan vs halt-and-replan on a sparsity misestimate."""
    from ..engine.executor import Executor
    from ..engine.reopt import execute_adaptive

    n = 4000
    # Declared dense, actually ~1% non-zero after the Hadamard product.
    a = input_matrix("A", n, n)
    b = input_matrix("B", n, n)
    out = relu(((a * b) @ b) @ b)
    out.name = "out"
    graph = build(out)

    rng = np.random.default_rng(0)
    data = {
        "A": rng.standard_normal((n, n)) * (rng.random((n, n)) < 0.01),
        "B": rng.standard_normal((n, n)),
    }

    ctx = OptimizerContext(cluster=_FAST_CLUSTER)
    static_plan = plan_with_service(graph, ctx, max_states=500)
    static = Executor(static_plan, ctx).run(data)
    adaptive = execute_adaptive(graph, data, ctx)

    table = ExperimentTable(
        "ext_adaptive_reopt",
        "Static plan vs mid-execution re-optimization on a sparsity "
        "misestimate",
        ["strategy", "simulated seconds", "replans"])
    table.add_row("static (paper prototype)",
                  f"{static.ledger.total_seconds:.2f}", "0")
    table.add_row("adaptive (paper §7 proposal)",
                  f"{adaptive.simulated_seconds:.2f}",
                  str(adaptive.reoptimizations))
    for name, est, act in adaptive.triggers:
        table.add_note(f"replanned at {name}: estimated sparsity "
                       f"{est:.3f}, observed {act:.4f}")
    return table


# ----------------------------------------------------------------------
# GPU catalog
# ----------------------------------------------------------------------
def ext_gpu_catalog() -> ExperimentTable:
    """The same computation with and without GPU implementations."""
    g = ComputeGraph()
    from ..core.formats import single
    from ..core.atoms import MATMUL
    from ..core.types import matrix

    a = g.add_source("A", matrix(8000, 8000), single())
    b = g.add_source("B", matrix(8000, 8000), single())
    ab = g.add_op("AB", MATMUL, (a, b))
    g.add_op("ABB", MATMUL, (ab, b))

    cpu_cluster = pliny_cluster(4)
    gpu_cluster = ClusterConfig(
        **{**cpu_cluster.__dict__, "gpus_per_worker": 1})

    cpu_plan = plan_with_service(g, OptimizerContext(cluster=cpu_cluster))
    gpu_plan = plan_with_service(g, OptimizerContext(
        cluster=gpu_cluster,
        implementations=DEFAULT_IMPLEMENTATIONS + gpu_implementations()))

    table = ExperimentTable(
        "ext_gpu_catalog",
        "Hardware-aware catalog (paper §4.2): CPU-only vs +GPU "
        "implementations",
        ["catalog", "predicted seconds", "chosen matmul impls"])
    table.add_row(
        "CPU (38 impls)", f"{cpu_plan.total_seconds:.2f}",
        ", ".join(sorted({i.name for i in
                          cpu_plan.annotation.impls.values()})))
    table.add_row(
        "CPU+GPU (40 impls)", f"{gpu_plan.total_seconds:.2f}",
        ", ".join(sorted({i.name for i in
                          gpu_plan.annotation.impls.values()})))
    return table


# ----------------------------------------------------------------------
# Optimizer scaling: dominance pruning on wide shared-ancestor DAGs
# ----------------------------------------------------------------------
def ext_optimizer_scaling() -> ExperimentTable:
    """Exact frontier search with and without the dominance prune.

    Sweeps the ``wide_shared_dag`` family — the worst case for the joint
    cost tables, whose size is exponential in the DAG width without
    pruning — and reports wall time, states explored and peak table size
    for both configurations.  The prune is lossless, so the "plan cost"
    column must be identical in every row.
    """
    from ..core.formats import row_strips, single, tiles
    from ..core.frontier import FrontierStats, optimize_dag
    from ..workloads import wide_shared_dag

    catalog = (single(), tiles(1000), tiles(2000), row_strips(1000))
    table = ExperimentTable(
        "ext_optimizer_scaling",
        "Exact frontier search on wide shared-ancestor DAGs: dominance "
        "pruning on vs off (identical plans, search effort only)",
        ["width", "vertices", "pruned", "unpruned", "speedup",
         "peak table (pruned/unpruned)", "plan cost"])
    for width in (2, 3, 4, 5):
        graph = wide_shared_dag(width, width)
        runs = {}
        for prune in (True, False):
            stats = FrontierStats()
            ctx = OptimizerContext(formats=catalog)
            plan = optimize_dag(graph, ctx, stats=stats, prune=prune)
            runs[prune] = (plan, stats)
        pruned_plan, pruned_stats = runs[True]
        plain_plan, plain_stats = runs[False]
        costs_match = abs(pruned_plan.total_seconds -
                          plain_plan.total_seconds) <= \
            1e-9 * max(1.0, plain_plan.total_seconds)
        table.add_row(
            str(width), str(len(graph)),
            f"{pruned_plan.optimize_seconds:.2f}s",
            f"{plain_plan.optimize_seconds:.2f}s",
            f"{plain_plan.optimize_seconds / pruned_plan.optimize_seconds:.1f}x",
            f"{pruned_stats.max_table_size} / {plain_stats.max_table_size}",
            f"{pruned_plan.total_seconds:.2f}s"
            + ("" if costs_match else " != unpruned!"))
        if not costs_match:
            table.add_note(
                f"width {width}: PRUNED COST DIVERGED from unpruned "
                f"({pruned_plan.total_seconds} vs "
                f"{plain_plan.total_seconds}) — the prune is broken")
        prof = pruned_plan.profile
        table.add_note(
            f"width {width}: pruned search explored "
            f"{prof.states_explored} states ({prof.states_pruned} "
            f"dominance-pruned) vs {plain_stats.states_examined} unpruned")
    return table


EXTENSION_EXPERIMENTS = {
    "ext_sketch_refinement": ext_sketch_refinement,
    "ext_adaptive_reopt": ext_adaptive_reopt,
    "ext_gpu_catalog": ext_gpu_catalog,
    "ext_optimizer_scaling": ext_optimizer_scaling,
}
