"""repro — automatic optimization of physical matrix implementations.

A reproduction of Luo, Jankov, Yuan & Jermaine, "Automatic Optimization of
Matrix Implementations for Distributed Machine Learning and Linear Algebra"
(SIGMOD 2021).

Quickstart::

    from repro import input_matrix, relu, build, optimize, OptimizerContext

    X = input_matrix("X", 10_000, 60_000)
    W = input_matrix("W", 60_000, 4000)
    plan = optimize(build(relu(X @ W)), OptimizerContext())
    print(plan.describe())

See README.md for the architecture overview and DESIGN.md for the
paper-to-module mapping.
"""

from .cluster import (
    DEFAULT_CLUSTER,
    ClusterConfig,
    pliny_cluster,
    simsql_cluster,
    systemds_cluster,
)
from .core import (
    ComputeGraph,
    MatrixType,
    OptimizerContext,
    Plan,
    matrix,
    optimize,
    vector,
)
from .engine import (
    DynamicsConfig,
    ExecutionCheckpoint,
    FaultConfig,
    FaultPlan,
    RecoveryPolicy,
    SpeculationPolicy,
    WorkerTimeline,
    execute_plan,
    execute_robust,
    execute_with_dynamics,
    resume,
    run_to_frontier,
    simulate,
    simulate_robust,
)
from .service import PlanCache, PlannerService
from .lang import (
    Expr,
    add_bias,
    build,
    col_sums,
    exp,
    input_matrix,
    inverse,
    relu,
    relu_grad,
    row_sums,
    sigmoid,
    softmax,
)

__version__ = "1.0.0"

__all__ = [
    "DEFAULT_CLUSTER", "ClusterConfig", "pliny_cluster", "simsql_cluster",
    "systemds_cluster",
    "ComputeGraph", "MatrixType", "OptimizerContext", "Plan", "matrix",
    "optimize", "vector",
    "DynamicsConfig", "ExecutionCheckpoint", "FaultConfig", "FaultPlan",
    "RecoveryPolicy", "SpeculationPolicy", "WorkerTimeline",
    "execute_plan", "execute_robust", "execute_with_dynamics",
    "resume", "run_to_frontier", "simulate", "simulate_robust",
    "PlanCache", "PlannerService",
    "Expr", "add_bias", "build", "col_sums", "exp", "input_matrix",
    "inverse", "relu", "relu_grad", "row_sums", "sigmoid", "softmax",
    "__version__",
]
