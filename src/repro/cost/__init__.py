"""Cost model: analytic features, regression weights, calibration, sparsity."""

from .calibration import CalibrationSample, calibrate, fit_weights
from .features import CostFeatures, ZERO_FEATURES
from .model import DEFAULT_WEIGHTS, INFEASIBLE, CostModel, CostWeights
from .sparsity import (
    DEFAULT_REOPT_THRESHOLD,
    MncSketch,
    observed_sparsity,
    relative_error,
    should_reoptimize,
)

__all__ = [
    "CalibrationSample", "calibrate", "fit_weights",
    "CostFeatures", "ZERO_FEATURES",
    "DEFAULT_WEIGHTS", "INFEASIBLE", "CostModel", "CostWeights",
    "DEFAULT_REOPT_THRESHOLD", "MncSketch", "observed_sparsity",
    "relative_error", "should_reoptimize",
]
