"""One experiment per paper table/figure.

Each ``fig_XX`` function reruns the corresponding experiment of the paper on
the simulated substrate and returns an :class:`ExperimentTable` whose cells
carry both our measured value and the paper's published value (in square
brackets) for direct shape comparison.

Reported runtimes are simulated seconds on the modelled cluster; optimizer
times (the parenthesized entries and all of Fig 13) are real wall-clock
seconds on this machine.
"""

from __future__ import annotations

import math

from ..cluster import pliny_cluster, simsql_cluster, systemds_cluster
from ..core.brute import BruteForceTimeout, optimize_brute
from ..core.formats import (
    DEFAULT_FORMATS,
    DENSE_FORMATS,
    SINGLE_BLOCK_FORMATS,
    SINGLE_STRIP_BLOCK_FORMATS,
    col_strips,
    csr_strips,
    row_strips,
    single,
    tiles,
)
from ..core.optimizer import optimize
from ..baselines import (
    plan_all_tile,
    plan_hand_written,
    plan_systemds,
    plan_user_with_retry,
    simulate_pytorch,
)
from ..workloads.chains import (
    SCALING_FAMILIES,
    mm_chain_graph,
    motivating_graph,
)
from ..workloads.ffnn import (
    FFNNConfig,
    amazoncat_config,
    ffnn_backprop_to_w2,
    ffnn_full_step,
)
from ..workloads.inverse import two_level_inverse_graph
from . import paper_values
from .harness import (
    ExperimentTable,
    auto_cell,
    display_time,
    fresh_context,
    manual_plan,
    opt_time_cell,
    plan_cell,
    plan_with_service,
)

#: Beam width for the frontier algorithm on the large FFNN graphs.  Exact
#: search reproduces the same plans (verified in tests) but takes ~100 s per
#: graph, matching the paper's reported 1:03 optimization time for Fig 5.
FFNN_BEAM = 1500

#: Brute-force time budgets for Fig 13 (the paper used 30 minutes; we use
#: much less to keep the benchmark suite runnable — see EXPERIMENTS.md).
BRUTE_TIMEOUT_SCALE1 = 45.0
BRUTE_TIMEOUT_LARGER = 5.0


def _with_paper(ours: str, paper: str) -> str:
    return f"{ours} [{paper}]"


# ======================================================================
# Fig 1: the motivating example
# ======================================================================
def fig01() -> ExperimentTable:
    """Section 2.1: two hand-written implementations of matA x matB x matC."""
    ctx = fresh_context(simsql_cluster(5))
    graph = motivating_graph()
    # names created by the expression builder: matmul_* — rename lookup:
    ab_name = graph.inner_vertices[0].name
    abc_name = graph.inner_vertices[1].name

    impl1 = manual_plan(graph, ctx, {
        ab_name: ("mm_strip_cross", (row_strips(10), col_strips(10))),
        abc_name: ("mm_tile_shuffle", (tiles(10), tiles(10))),
    }, name="implementation-1")
    impl2 = manual_plan(graph, ctx, {
        ab_name: ("mm_strip_cross", (row_strips(10), col_strips(10))),
        abc_name: ("mm_bcast_left", (single(), col_strips(10_000))),
    }, name="implementation-2")
    auto = plan_with_service(graph, ctx)

    table = ExperimentTable(
        "fig01", "Motivating matmul comparison (ours [paper])",
        ["phase", "Implementation 1", "Implementation 2", "Auto"])

    def phase_cells(plan):
        vids = [v.vid for v in graph.inner_vertices]
        mult1 = plan.cost.vertex_seconds[vids[0]]
        trans = sum(plan.cost.edge_seconds[e]
                    for e in graph.in_edges(vids[1]))
        mult2 = plan.cost.vertex_seconds[vids[1]]
        return mult1, trans, mult2

    m1 = phase_cells(impl1)
    m2 = phase_cells(impl2)
    ma = phase_cells(auto)
    p1, p2 = paper_values.FIG01["impl1"], paper_values.FIG01["impl2"]
    table.add_row("matA x matB",
                  _with_paper(display_time(m1[0]), p1["mult1"]),
                  _with_paper(display_time(m2[0]), p2["mult1"]),
                  display_time(ma[0]))
    table.add_row("transform",
                  _with_paper(display_time(m1[1]), p1["transform"]),
                  _with_paper(display_time(m2[1]), p2["transform"]),
                  display_time(ma[1]))
    table.add_row("matAB x matC",
                  _with_paper(display_time(m1[2]), p1["mult2"]),
                  _with_paper(display_time(m2[2]), p2["mult2"]),
                  display_time(ma[2]))
    table.add_row("total",
                  _with_paper(plan_cell(impl1), p1["total"]),
                  _with_paper(plan_cell(impl2), p2["total"]),
                  plan_cell(auto))
    return table


# ======================================================================
# Figs 5-8: FFNN plan quality on SimSQL
# ======================================================================
def fig05() -> ExperimentTable:
    """Experiment 1: FFNN forward + full backprop + forward, hidden 80K."""
    ctx = fresh_context(simsql_cluster(10))
    graph = ffnn_full_step(FFNNConfig(hidden=80_000))
    auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
    hand = plan_hand_written(graph, ctx)
    tile = plan_all_tile(graph, ctx)
    p = paper_values.FIG05
    table = ExperimentTable(
        "fig05", "FFNN fwd+backprop+fwd, hidden 80K, 10 workers "
        "(ours [paper])",
        ["plan", "time", "opt time"])
    table.add_row("Auto-gen", _with_paper(plan_cell(auto), p["auto"]),
                  _with_paper(opt_time_cell(auto), f"({p['auto_opt']})"))
    table.add_row("Hand-written", _with_paper(plan_cell(hand), p["hand"]), "")
    table.add_row("All-tile", _with_paper(plan_cell(tile), p["tile"]), "")
    table.add_note(f"compute graph has {len(graph)} vertices "
                   "(paper: 57)")
    return table


def fig06() -> ExperimentTable:
    """Experiment 2: FFNN fwd + backprop-to-W2 across hidden sizes."""
    table = ExperimentTable(
        "fig06", "FFNN fwd + backprop to W2 by hidden size, 10 workers "
        "(ours [paper])",
        ["hidden", "Auto-gen", "Hand-written", "All-tile"])
    for hidden, paper in paper_values.FIG06.items():
        ctx = fresh_context(simsql_cluster(10))
        graph = ffnn_backprop_to_w2(FFNNConfig(hidden=hidden))
        auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
        hand = plan_hand_written(graph, ctx)
        tile = plan_all_tile(graph, ctx)
        table.add_row(
            f"{hidden // 1000}K",
            _with_paper(auto_cell(auto), paper["auto"]),
            _with_paper(plan_cell(hand), paper["hand"]),
            _with_paper(plan_cell(tile), paper["tile"]))
    return table


def fig07() -> ExperimentTable:
    """Experiment 3: FFNN hidden 160K across cluster sizes."""
    table = ExperimentTable(
        "fig07", "FFNN fwd + backprop to W2, hidden 160K, by cluster size "
        "(ours [paper])",
        ["workers", "Auto-gen", "Hand-written", "All-tile"])
    graph = ffnn_backprop_to_w2(FFNNConfig(hidden=160_000))
    for workers, paper in paper_values.FIG07.items():
        ctx = fresh_context(simsql_cluster(workers))
        auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
        hand = plan_hand_written(graph, ctx)
        tile = plan_all_tile(graph, ctx)
        table.add_row(
            str(workers),
            _with_paper(auto_cell(auto), paper["auto"]),
            _with_paper(plan_cell(hand), paper["hand"]),
            _with_paper(plan_cell(tile), paper["tile"]))
    return table


def fig08() -> ExperimentTable:
    """Experiment 4: auto-generated vs three recruited programmers."""
    ctx = fresh_context(simsql_cluster(10))
    graph = ffnn_backprop_to_w2(FFNNConfig(hidden=80_000))
    auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
    p = paper_values.FIG08
    table = ExperimentTable(
        "fig08", "FFNN hidden 80K: auto vs simulated programmers "
        "(ours [paper]; * = first attempt crashed)",
        ["planner", "dist-ML expertise", "runtime"])
    table.add_row("Auto-gen", "NA", _with_paper(plan_cell(auto), p["auto"]))
    for level in ("low", "medium", "high"):
        result = plan_user_with_retry(graph, ctx, level)
        cell = plan_cell(result.plan) + result.display_suffix
        table.add_row(f"User ({level})", level.capitalize(),
                      _with_paper(cell, p[f"user_{level}"]))
    return table


# ======================================================================
# Fig 9: two-level block inverse
# ======================================================================
def fig09() -> ExperimentTable:
    """Two-level block-wise matrix inverse, 10 workers."""
    ctx = fresh_context(simsql_cluster(10))
    graph = two_level_inverse_graph()
    auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
    hand = plan_hand_written(graph, ctx)
    tile = plan_all_tile(graph, ctx)
    p = paper_values.FIG09
    table = ExperimentTable(
        "fig09", "Two-level block-wise matrix inverse (ours [paper])",
        ["plan", "time", "opt time"])
    table.add_row("Auto-gen", _with_paper(plan_cell(auto), p["auto"]),
                  _with_paper(opt_time_cell(auto), f"({p['auto_opt']})"))
    table.add_row("Hand-written", _with_paper(plan_cell(hand), p["hand"]), "")
    table.add_row("All-tile", _with_paper(plan_cell(tile), p["tile"]), "")
    return table


# ======================================================================
# Fig 10: matrix multiplication chain
# ======================================================================
def fig10() -> ExperimentTable:
    """Six-matrix multiplication chain across the Fig 4 size sets."""
    table = ExperimentTable(
        "fig10", "Matrix multiplication chain by input size set "
        "(ours [paper])",
        ["size set", "Auto-gen", "Hand-written", "All-tile"])
    for size_set, paper in paper_values.FIG10.items():
        ctx = fresh_context(simsql_cluster(10))
        graph = mm_chain_graph(size_set)
        auto = plan_with_service(graph, ctx, max_states=FFNN_BEAM)
        hand = plan_hand_written(graph, ctx)
        tile = plan_all_tile(graph, ctx)
        table.add_row(
            f"Size Set {size_set}",
            _with_paper(auto_cell(auto), paper["auto"]),
            _with_paper(plan_cell(hand), paper["hand"]),
            _with_paper(plan_cell(tile), paper["tile"]))
    return table


# ======================================================================
# Figs 11-12: systems comparison on PlinyCompute
# ======================================================================
def _pc_plan(workers: int, hidden: int, batch: int, *,
             sparse_input: bool, allow_sparse_formats: bool):
    """Optimize the FFNN on the PlinyCompute profile with the paper's
    load formats (X in width-1000 column strips or CSR strips; W1 in
    1000x1000 chunks; everything else whole)."""
    x_fmt = csr_strips(1000) if sparse_input else col_strips(1000)
    # CSR strips are row-partitioned in our catalog; the paper shards the
    # input by rows for the sparse case too.
    if sparse_input:
        x_fmt = csr_strips(1000)
    cfg = amazoncat_config(batch, hidden, sparse_input=True,
                           x_format=x_fmt, w1_format=tiles(1000))
    if not allow_sparse_formats and not sparse_input:
        cfg = amazoncat_config(batch, hidden, sparse_input=False,
                               x_format=col_strips(1000),
                               w1_format=tiles(1000))
    graph = ffnn_backprop_to_w2(cfg)
    formats = DEFAULT_FORMATS if allow_sparse_formats else DENSE_FORMATS
    ctx = fresh_context(pliny_cluster(workers), formats=formats)
    return plan_with_service(graph, ctx, max_states=FFNN_BEAM), ctx


def fig11() -> ExperimentTable:
    """Systems comparison, 1K batch, PC constrained to dense operations."""
    table = ExperimentTable(
        "fig11", "FFNN on AmazonCat-shaped data, 1K batch (ours [paper])",
        ["workers x hidden", "PC No Sparsity", "PyTorch", "SystemDS"])
    for (workers, hidden), paper in paper_values.FIG11.items():
        pc, _ctx = _pc_plan(workers, hidden, 1000, sparse_input=False,
                            allow_sparse_formats=False)
        pt = simulate_pytorch(
            amazoncat_config(1000, hidden, sparse_input=False),
            pliny_cluster(workers))
        sysds_ctx = fresh_context(systemds_cluster(workers))
        sysds = plan_systemds(
            ffnn_backprop_to_w2(amazoncat_config(
                1000, hidden, sparse_input=True,
                x_format=csr_strips(1000), w1_format=tiles(1000))),
            sysds_ctx)
        table.add_row(
            f"{workers}w x {hidden}",
            _with_paper(auto_cell(pc), paper["pc"]),
            _with_paper(pt.display, paper["pytorch"]),
            _with_paper(plan_cell(sysds), paper["systemds"]))
    return table


def fig12() -> ExperimentTable:
    """Systems comparison, 10K batch, sparsity on/off."""
    table = ExperimentTable(
        "fig12", "FFNN on AmazonCat-shaped data, 10K batch (ours [paper])",
        ["workers x hidden", "PC No Sparsity", "PC Sparse Input",
         "PC Dense Input", "PyTorch", "SystemDS"])
    for (workers, hidden), paper in paper_values.FIG12.items():
        no_sp, _ = _pc_plan(workers, hidden, 10_000, sparse_input=False,
                            allow_sparse_formats=False)
        sp_in, _ = _pc_plan(workers, hidden, 10_000, sparse_input=True,
                            allow_sparse_formats=True)
        dn_in, _ = _pc_plan(workers, hidden, 10_000, sparse_input=False,
                            allow_sparse_formats=True)
        pt = simulate_pytorch(
            amazoncat_config(10_000, hidden, sparse_input=False),
            pliny_cluster(workers))
        sysds = plan_systemds(
            ffnn_backprop_to_w2(amazoncat_config(
                10_000, hidden, sparse_input=True,
                x_format=csr_strips(1000), w1_format=tiles(1000))),
            fresh_context(systemds_cluster(workers)))
        table.add_row(
            f"{workers}w x {hidden}",
            _with_paper(plan_cell(no_sp), paper["pc_no_sparsity"]),
            _with_paper(plan_cell(sp_in), paper["pc_sparse_input"]),
            _with_paper(plan_cell(dn_in), paper["pc_dense_input"]),
            _with_paper(pt.display, paper["pytorch"]),
            _with_paper(plan_cell(sysds), paper["systemds"]))
    return table


# ======================================================================
# Fig 13: optimizer runtimes
# ======================================================================
FORMAT_SUBSETS = {
    "all": DEFAULT_FORMATS,
    "single_strip_block": SINGLE_STRIP_BLOCK_FORMATS,
    "single_block": SINGLE_BLOCK_FORMATS,
}


def fig13(scales: tuple[int, ...] = (1, 2, 3, 4),
          include_brute: bool = True) -> ExperimentTable:
    """Optimization time: DP / frontier vs brute force."""
    table = ExperimentTable(
        "fig13", "Optimization times, DP vs brute force (ours [paper])",
        ["formats / scale", "DP DAG2", "Brute DAG2", "DP DAG1",
         "Brute DAG1", "DP Tree", "Brute Tree"])
    for subset_name, formats in FORMAT_SUBSETS.items():
        for scale in scales:
            cells = [f"{subset_name} / {scale}"]
            for family in ("dag2", "dag1", "tree"):
                paper_dp, paper_brute = \
                    paper_values.FIG13[subset_name][family][scale]
                graph = SCALING_FAMILIES[family](scale)
                ctx = fresh_context(simsql_cluster(10), formats=formats)
                # Deliberately bypasses the shared planner service: this
                # figure measures optimizer wall-clock, which a cached
                # plan would fake.
                plan = optimize(graph, ctx)
                cells.append(_with_paper(
                    display_time(plan.optimize_seconds), paper_dp))
                if include_brute:
                    timeout = (BRUTE_TIMEOUT_SCALE1 if scale == 1
                               else BRUTE_TIMEOUT_LARGER)
                    ctx_b = fresh_context(simsql_cluster(10),
                                          formats=formats)
                    try:
                        bplan = optimize_brute(graph, ctx_b,
                                               timeout_seconds=timeout)
                        brute_cell = display_time(bplan.optimize_seconds)
                    except BruteForceTimeout:
                        brute_cell = "Fail"
                    cells.append(_with_paper(brute_cell, paper_brute))
                else:
                    cells.append(f"- [{paper_brute}]")
            table.add_row(*cells)
    table.add_note(
        f"brute-force timeout: {BRUTE_TIMEOUT_SCALE1:.0f}s at scale 1, "
        f"{BRUTE_TIMEOUT_LARGER:.0f}s above (paper used 30 min)")
    return table


# ======================================================================
# Ablations (DESIGN.md Section 5)
# ======================================================================
def ablation_transform_costs() -> ExperimentTable:
    """The paper's key idea: integrate transformation costs into the
    search.  The ablated optimizer ignores them while searching (they are
    still paid at execution)."""
    table = ExperimentTable(
        "ablation_transform_costs",
        "Optimizer with vs without transformation-cost integration",
        ["workload", "with transform costs", "without (ablated)",
         "slowdown"])
    workloads = [
        ("mm chain set 1", lambda: mm_chain_graph(1)),
        ("mm chain set 3", lambda: mm_chain_graph(3)),
        ("FFNN 40K", lambda: ffnn_backprop_to_w2(FFNNConfig(hidden=40_000))),
        ("inverse", two_level_inverse_graph),
    ]
    for label, build_graph in workloads:
        graph = build_graph()
        full_ctx = fresh_context(simsql_cluster(10))
        full = plan_with_service(graph, full_ctx, max_states=FFNN_BEAM)
        ablated_ctx = fresh_context(simsql_cluster(10),
                                    charge_transforms=False)
        ablated_plan = plan_with_service(graph, ablated_ctx,
                                         max_states=FFNN_BEAM)
        # Evaluate the ablated choice under the true cost model.
        from ..core.annotation import make_plan
        true_cost = make_plan(graph, ablated_plan.annotation, full_ctx,
                              "ablated", allow_infeasible=True)
        ratio = (true_cost.total_seconds / full.total_seconds
                 if math.isfinite(true_cost.total_seconds) else math.inf)
        table.add_row(label, plan_cell(full), plan_cell(true_cost),
                      f"{ratio:.2f}x" if math.isfinite(ratio) else "Fail")
    return table


def ablation_sharing() -> ExperimentTable:
    """Joint equivalence-class DP vs pretending the DAG is a tree.

    The tree DP cannot run on DAGs directly; instead we compare the frontier
    algorithm's cost against the sum of independently optimized copies
    (which double-pays shared subgraphs) on the DAG families."""
    from ..workloads.chains import dag1_graph, dag2_graph

    table = ExperimentTable(
        "ablation_sharing",
        "Shared-subgraph-aware DP vs independent sub-optimizations",
        ["graph", "frontier (shared)", "tree-expanded (duplicated)",
         "overhead"])
    for label, builder in (("dag1 scale 2", lambda: dag1_graph(2)),
                           ("dag2 scale 2", lambda: dag2_graph(2))):
        graph = builder()
        ctx = fresh_context(simsql_cluster(10))
        shared = plan_with_service(graph, ctx)
        duplicated = _tree_expanded_cost(graph, ctx)
        table.add_row(label, plan_cell(shared), display_time(duplicated),
                      f"{duplicated / shared.total_seconds:.2f}x")
    return table


def _tree_expanded_cost(graph, ctx) -> float:
    """Cost of optimizing the graph as if shared vertices were duplicated:
    every vertex's subgraph is optimized independently (per-vertex tree DP),
    so shared ancestors are paid once per consumer."""
    from ..core.tree_dp import _reach_table  # reuse the reach machinery

    table: dict[int, dict] = {}
    total_of: dict[int, float] = {}
    for vid in graph.topological_order():
        v = graph.vertex(vid)
        if v.is_source:
            table[vid] = {v.format: 0.0}
            continue
        in_types = tuple(graph.vertex(p).mtype for p in v.inputs)
        patterns = ctx.accepted_patterns(v.op, in_types)
        needed = [set() for _ in v.inputs]
        for _, in_fmts, _, _ in patterns:
            for j, fmt in enumerate(in_fmts):
                needed[j].add(fmt)
        reach = [
            _reach_table(graph, ctx, producer, table[producer], needed[j])
            for j, producer in enumerate(v.inputs)
        ]
        costs: dict = {}
        for impl, in_fmts, out_fmt, impl_cost in patterns:
            tot = impl_cost
            ok = True
            for j, fmt in enumerate(in_fmts):
                got = reach[j].get(fmt)
                if got is None:
                    ok = False
                    break
                tot += got[0]
            if ok and (out_fmt not in costs or tot < costs[out_fmt]):
                costs[out_fmt] = tot
        table[vid] = costs
        total_of[vid] = min(costs.values())
    sinks = [s.vid for s in graph.sinks() if not s.is_source]
    return sum(total_of[s] for s in sinks)


#: Registry used by the CLI and EXPERIMENTS.md generation.
from .chaos import CHAOS_EXPERIMENTS  # noqa: E402 (registry tail)
from .egraph import EGRAPH_EXPERIMENTS  # noqa: E402 (registry tail)
from .extensions import EXTENSION_EXPERIMENTS  # noqa: E402 (registry tail)
from .observability import (  # noqa: E402 (registry tail)
    OBSERVABILITY_EXPERIMENTS,
)
from .multi_query import MULTI_QUERY_EXPERIMENTS  # noqa: E402 (registry tail)
from .plan_cache import PLAN_CACHE_EXPERIMENTS  # noqa: E402 (registry tail)
from .rewrites import REWRITE_EXPERIMENTS  # noqa: E402 (registry tail)
from .robustness import ROBUSTNESS_EXPERIMENTS  # noqa: E402 (registry tail)
from .scheduling import SCHEDULING_EXPERIMENTS  # noqa: E402 (registry tail)
from .vectorized import VECTORIZED_EXPERIMENTS  # noqa: E402 (registry tail)

EXPERIMENTS = {
    "fig01": fig01,
    "fig05": fig05,
    "fig06": fig06,
    "fig07": fig07,
    "fig08": fig08,
    "fig09": fig09,
    "fig10": fig10,
    "fig11": fig11,
    "fig12": fig12,
    "fig13": fig13,
    "ablation_transform_costs": ablation_transform_costs,
    "ablation_sharing": ablation_sharing,
    **CHAOS_EXPERIMENTS,
    **EGRAPH_EXPERIMENTS,
    **EXTENSION_EXPERIMENTS,
    **OBSERVABILITY_EXPERIMENTS,
    **MULTI_QUERY_EXPERIMENTS,
    **PLAN_CACHE_EXPERIMENTS,
    **REWRITE_EXPERIMENTS,
    **ROBUSTNESS_EXPERIMENTS,
    **SCHEDULING_EXPERIMENTS,
    **VECTORIZED_EXPERIMENTS,
}
