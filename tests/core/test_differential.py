"""Differential test harness: the frontier algorithm vs its oracles.

Generates seeded random DAGs — parameterized by vertex count, fan-in and
sharing density — and checks that :func:`optimize_dag` agrees with
brute-force enumeration on every one of them, with the dominance prune both
on and off, and with the linear-time tree DP on tree-shaped graphs.  This
is the harness the optimizer-perf CI job runs; the wide-DAG budget check at
the bottom keeps the pruned search inside an absolute time budget on the
worst-case shared-ancestor topology.
"""

import math
import random

import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix
from repro.core.atoms import (
    ADD,
    ELEM_MUL,
    MATMUL,
    RELU,
    SUB,
    TRANSPOSE,
)
from repro.core.brute import optimize_brute
from repro.core.formats import col_strips, row_strips, single, tiles
from repro.core.frontier import ORDERS, FrontierStats, optimize_dag
from repro.core.tree_dp import optimize_tree
from repro.workloads import (
    AttentionConfig,
    FFNNConfig,
    attention_graph,
    dag1_graph,
    dag2_graph,
    ffnn_backprop_to_w2,
    ffnn_forward,
    ffnn_full_step,
    linear_regression,
    logistic_regression_step,
    mm_chain_graph,
    motivating_graph,
    power_iteration,
    ridge_gradient_descent,
    tree_graph,
    two_level_inverse_graph,
    wide_shared_dag,
)

#: Three formats keep the brute-force oracle fast enough to run hundreds of
#: differential cases while still exercising transformation choices.
ORACLE_FORMATS = (single(), tiles(1000), row_strips(1000))

OPS = (MATMUL, ADD, SUB, ELEM_MUL, RELU, TRANSPOSE)


def oracle_ctx() -> OptimizerContext:
    return OptimizerContext(formats=ORACLE_FORMATS)


def random_dag(seed: int, inner: int = 3, max_fanin: int = 2,
               sharing: float = 0.5, tree_only: bool = False) -> ComputeGraph:
    """A seeded random well-typed compute DAG over square matrices.

    ``inner`` bounds the inner-vertex count, ``max_fanin`` restricts which
    operators are eligible (arity <= max_fanin), and ``sharing`` is the
    probability that an argument reuses a vertex that already has a
    consumer — higher values produce more shared ancestors and therefore
    larger frontier equivalence classes.  ``tree_only`` grows a tree by
    consuming each vertex at most once.
    """
    rng = random.Random(seed)
    g = ComputeGraph()
    n = rng.choice([2000, 3000])
    pool = [g.add_source(f"S{i}", matrix(n, n),
                         rng.choice([single(), tiles(1000)]))
            for i in range(rng.randint(2, 3))]
    consumed: set[int] = set()
    ops = [op for op in OPS if op.arity <= max_fanin]
    for i in range(inner):
        op = rng.choice(ops)
        if tree_only:
            free = [v for v in pool if v not in consumed]
            if len(free) < op.arity:
                op, free = RELU, (free or pool[-1:])
            picks = rng.sample(free, op.arity)
            consumed.update(picks)
        else:
            picks = []
            for _ in range(op.arity):
                shared = [v for v in pool if v in consumed]
                if shared and rng.random() < sharing:
                    picks.append(rng.choice(shared))
                else:
                    picks.append(rng.choice(pool))
            consumed.update(picks)
        pool.append(g.add_op(f"v{i}", op, tuple(picks)))
    return g


#: 200 differential cases: (seed batch, |V_inner|, max fan-in, sharing).
DAG_CASES = [(batch, inner, fanin, sharing)
             for inner, fanin, sharing in [(2, 2, 0.3), (3, 2, 0.5),
                                           (3, 2, 0.9), (4, 2, 0.7),
                                           (4, 1, 0.0)]
             for batch in range(8)]


class TestAgainstBrute:
    """optimize_dag == optimize_brute on total cost, prune on and off."""

    @pytest.mark.parametrize("batch,inner,fanin,sharing", DAG_CASES)
    def test_matches_brute(self, batch, inner, fanin, sharing):
        for sub in range(5):  # 40 parameter sets x 5 seeds = 200 graphs
            seed = batch * 1000 + sub + inner * 37 + int(sharing * 100)
            g = random_dag(seed, inner=inner, max_fanin=fanin,
                           sharing=sharing)
            brute = optimize_brute(g, oracle_ctx(), timeout_seconds=120)
            for prune in (True, False):
                plan = optimize_dag(g, oracle_ctx(), prune=prune)
                assert math.isclose(plan.total_seconds, brute.total_seconds,
                                    rel_tol=1e-9), \
                    f"seed={seed} prune={prune} disagrees with brute force"


class TestAgainstTreeDP:
    """optimize_dag == optimize_tree on tree-shaped graphs."""

    @pytest.mark.parametrize("seed", range(20))
    def test_matches_tree_dp(self, seed):
        g = random_dag(seed + 300, inner=4, tree_only=True)
        if not g.is_tree_shaped():
            pytest.skip("random graph not a tree")
        tree = optimize_tree(g, oracle_ctx())
        for prune in (True, False):
            plan = optimize_dag(g, oracle_ctx(), prune=prune)
            assert math.isclose(plan.total_seconds, tree.total_seconds,
                                rel_tol=1e-9)


class TestPruneIsLossless:
    """The dominance prune never changes the plan, only the search effort."""

    @pytest.mark.parametrize("seed", range(12))
    def test_same_cost_and_formats(self, seed):
        g = random_dag(seed + 600, inner=5, sharing=0.8)
        pruned = optimize_dag(g, oracle_ctx(), prune=True)
        plain = optimize_dag(g, oracle_ctx(), prune=False)
        assert math.isclose(pruned.total_seconds, plain.total_seconds,
                            rel_tol=1e-9)
        assert pruned.cost.vertex_formats == plain.cost.vertex_formats

    def test_no_prunes_implies_same_table_sizes(self):
        """states_pruned == 0 must mean the search was bit-identical."""
        for seed in range(40):
            g = random_dag(seed + 900, inner=3, sharing=0.4)
            pruned_stats, plain_stats = FrontierStats(), FrontierStats()
            optimize_dag(g, oracle_ctx(), stats=pruned_stats, prune=True)
            optimize_dag(g, oracle_ctx(), stats=plain_stats, prune=False)
            if pruned_stats.states_pruned == 0:
                assert pruned_stats.max_table_size == \
                    plain_stats.max_table_size
                assert pruned_stats.states_examined == \
                    plain_stats.states_examined
                return  # found and verified an un-pruned run
        pytest.skip("every seed triggered at least one prune")


#: Reduced catalog that keeps the object-table oracle tractable on the
#: 45-vertex inverse graph (mirrors the pruning-invariant suite).
FAMILY_CATALOG = (single(), tiles(1000), row_strips(1000), col_strips(1000))

#: The 14 workload families shipped in ``src/repro/workloads``.
FAMILIES = {
    "ffnn_forward": lambda: ffnn_forward(FFNNConfig(hidden=8000)),
    "ffnn_backprop": lambda: ffnn_backprop_to_w2(FFNNConfig(hidden=8000)),
    "attention": lambda: attention_graph(AttentionConfig()),
    "inverse": two_level_inverse_graph,
    "motivating": motivating_graph,
    "mm_chain_set1": lambda: mm_chain_graph(1),
    "dag1_scale2": lambda: dag1_graph(2),
    "dag2_scale2": lambda: dag2_graph(2),
    "tree_scale2": lambda: tree_graph(2),
    "wide_shared": lambda: wide_shared_dag(3, 3),
    "ml_linear_regression": lambda: linear_regression(4000, 500).graph,
    "ml_logistic_regression":
        lambda: logistic_regression_step(4000, 500).graph,
    "ml_ridge_gd": lambda: ridge_gradient_descent(4000, 500).graph,
    "ml_power_iteration": lambda: power_iteration(3000).graph,
}

#: The paper-figure golden workloads (the plan-cache experiment's trio).
GOLDENS = {
    "fig05_ffnn": lambda: ffnn_full_step(FFNNConfig(hidden=80_000)),
    "fig09_inverse": two_level_inverse_graph,
    "fig10_mm_chain": lambda: mm_chain_graph(1),
}


def _assert_array_matches_object(graph, ctx, **kwargs):
    """Run both frontier-table implementations; everything must be
    bit-identical: the plan (exact ``==`` on cost, no tolerance), the
    search-effort counters, and the attached profile."""
    runs = {}
    for frontier in ("array", "object"):
        stats = FrontierStats()
        plan = optimize_dag(graph, ctx, stats=stats, frontier=frontier,
                            **kwargs)
        runs[frontier] = (plan, stats)
    (a_plan, a_stats), (o_plan, o_stats) = runs["array"], runs["object"]
    assert a_plan.total_seconds == o_plan.total_seconds  # exact, not approx
    assert a_plan.cost.vertex_formats == o_plan.cost.vertex_formats
    assert a_plan.annotation.impls == o_plan.annotation.impls
    assert a_plan.annotation.transforms == o_plan.annotation.transforms
    for field in ("states_examined", "states_pruned", "states_beamed",
                  "max_table_size", "max_class_size", "sweep_order"):
        assert getattr(a_stats, field) == getattr(o_stats, field), field
    pa, po = a_plan.profile, o_plan.profile
    assert (pa.frontier, po.frontier) == ("array", "object")
    assert (pa.states_explored, pa.states_pruned, pa.states_beamed,
            pa.peak_table_size, pa.max_class_size, pa.sweep_order) == \
           (po.states_explored, po.states_pruned, po.states_beamed,
            po.peak_table_size, po.max_class_size, po.sweep_order)


class TestArrayMatchesObject:
    """``frontier="array"`` vs the per-state object oracle: bit-identical
    plans and profile state counts, never merely close ones."""

    @pytest.mark.parametrize("batch,inner,fanin,sharing", DAG_CASES)
    def test_random_dags(self, batch, inner, fanin, sharing):
        for sub in range(5):  # the same 200 graphs the brute oracle sees
            seed = batch * 1000 + sub + inner * 37 + int(sharing * 100)
            g = random_dag(seed, inner=inner, max_fanin=fanin,
                           sharing=sharing)
            for prune in (True, False):
                _assert_array_matches_object(g, oracle_ctx(), prune=prune)

    @pytest.mark.parametrize("seed", range(10))
    def test_beamed_random_dags(self, seed):
        """The beam truncates tables mid-sweep: both implementations must
        keep (and count) exactly the same states."""
        g = random_dag(seed + 1200, inner=5, sharing=0.8)
        for max_states in (4, 16):
            _assert_array_matches_object(g, oracle_ctx(),
                                         max_states=max_states)

    @pytest.mark.parametrize("name", sorted(FAMILIES))
    def test_workload_families(self, name):
        graph = FAMILIES[name]()
        ctx = OptimizerContext(formats=FAMILY_CATALOG)
        for prune in (True, False):
            for order in ORDERS:
                _assert_array_matches_object(graph, ctx, prune=prune,
                                             order=order)

    @pytest.mark.parametrize("name", sorted(GOLDENS))
    def test_figure_goldens(self, name):
        graph = GOLDENS[name]()
        ctx = OptimizerContext(formats=FAMILY_CATALOG)
        for prune in (True, False):
            for order in ORDERS:
                _assert_array_matches_object(graph, ctx, prune=prune,
                                             order=order)


@pytest.mark.perf
def test_wide_dag_inside_budget():
    """Optimizer-perf smoke: a 40+-vertex shared-ancestor DAG, pruned and
    exact, must finish well inside a CI-friendly absolute budget."""
    g = wide_shared_dag(5, 5)
    assert len(g) >= 40
    ctx = oracle_ctx()
    stats = FrontierStats()
    import time
    t0 = time.perf_counter()
    plan = optimize_dag(g, ctx, stats=stats)
    elapsed = time.perf_counter() - t0
    assert elapsed < 10.0, f"pruned wide-DAG search took {elapsed:.1f}s"
    assert stats.states_pruned > 0
    assert math.isfinite(plan.total_seconds)
