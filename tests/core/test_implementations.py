"""Tests for atomic computation implementations."""

import math

from hypothesis import given, settings, strategies as st

from repro.cluster import DEFAULT_CLUSTER, ClusterConfig
from repro.core.atoms import (
    ADD_BIAS,
    INVERSE,
    MATMUL,
)
from repro.core.formats import (
    DEFAULT_FORMATS,
    col_strips,
    csr_strips,
    row_strips,
    single,
    tiles,
)
from repro.core.implementations import (
    DEFAULT_IMPLEMENTATIONS,
    JoinStrategy,
    implementations_for,
)
from repro.core.types import matrix, vector

CLUSTER = DEFAULT_CLUSTER


def impl(name):
    for i in DEFAULT_IMPLEMENTATIONS:
        if i.name == name:
            return i
    raise KeyError(name)


class TestMatmulImplementations:
    def test_ten_matmul_impls(self):
        assert len(implementations_for(MATMUL)) == 10

    def test_tile_shuffle_requires_matching_inner_split(self):
        mm = impl("mm_tile_shuffle")
        types = (matrix(4000, 4000), matrix(4000, 4000))
        ok = mm.output_format(types, (tiles(1000), tiles(1000)), CLUSTER)
        assert ok == tiles(1000)
        bad = mm.output_format(types, (tiles(1000), tiles(2000)), CLUSTER)
        assert bad is None

    def test_strip_cross_no_aggregation_output(self):
        mm = impl("mm_strip_cross")
        types = (matrix(4000, 8000), matrix(8000, 4000))
        fmts = (row_strips(1000), col_strips(1000))
        out = mm.output_format(types, fmts, CLUSTER)
        assert out == tiles(1000)
        # No aggregation: intermediates are bounded by one pass over the
        # inputs plus the output (no multiplicative partial-product waves).
        feats = mm.features(types, fmts, CLUSTER)
        bound = (fmts[0].stored_bytes(types[0])
                 + fmts[1].stored_bytes(types[1])
                 + mm.op.out_type(*types).dense_bytes)
        assert feats.intermediate_bytes <= bound + 1e-6

    def test_broadcast_left_requires_small_side(self):
        mm = impl("mm_bcast_left")
        small = (matrix(100, 100), matrix(100, 50_000))
        out = mm.output_format(small, (single(), col_strips(1000)), CLUSTER)
        assert out is not None and out.is_col_partitioned
        # A broadcast side exceeding a RAM fraction is rejected at typing
        # time (the paper's hardware-aware i.f).
        tiny_ram = ClusterConfig(ram_bytes=100_000)
        assert mm.output_format(small, (single(), col_strips(1000)),
                                tiny_ram) is None

    def test_local_single(self):
        mm = impl("mm_local_single")
        types = (matrix(500, 500), matrix(500, 500))
        assert mm.output_format(types, (single(), single()),
                                CLUSTER) == single()

    def test_sparse_bcast_flops_scale_with_nnz(self):
        mm = impl("mm_csr_bcast_dense")
        sparse_types = (matrix(10_000, 50_000, sparsity=0.001),
                        matrix(50_000, 1000))
        fmts = (csr_strips(1000), single())
        assert mm.output_format(sparse_types, fmts, CLUSTER) is not None
        sparse_feats = mm.features(sparse_types, fmts, CLUSTER)
        dense_flops = 2.0 * 10_000 * 50_000 * 1000
        assert sparse_feats.flops < dense_flops / 100

    def test_wrong_format_family_rejected(self):
        mm = impl("mm_tile_shuffle")
        types = (matrix(4000, 4000), matrix(4000, 4000))
        assert mm.output_format(types, (single(), tiles(1000)),
                                CLUSTER) is None


class TestShuffleIntermediates:
    def test_partials_grow_with_inner_splits_until_combiner_bound(self):
        mm = impl("mm_tile_shuffle")
        big = (matrix(10_000, 10_000), matrix(10_000, 10_000))
        coarse = mm.features(big, (tiles(5000), tiles(5000)), CLUSTER)
        fine = mm.features(big, (tiles(1000), tiles(1000)), CLUSTER)
        assert fine.intermediate_bytes > coarse.intermediate_bytes

    def test_broadcast_avoids_partials(self):
        shuffle = impl("mm_tile_shuffle")
        bcast = impl("mm_tile_bcast")
        types = (matrix(4000, 4000), matrix(4000, 4000))
        fmts = (tiles(1000), tiles(1000))
        assert bcast.features(types, fmts, CLUSTER).intermediate_bytes < \
            shuffle.features(types, fmts, CLUSTER).intermediate_bytes


class TestElementwiseImplementations:
    def test_blocked_requires_identical_formats(self):
        ew = impl("ew_blocked_add")
        types = (matrix(4000, 4000), matrix(4000, 4000))
        assert ew.output_format(types, (tiles(1000), tiles(1000)),
                                CLUSTER) == tiles(1000)
        assert ew.output_format(types, (tiles(1000), tiles(2000)),
                                CLUSTER) is None

    def test_sparse_blocked(self):
        ew = impl("ew_sparse_add")
        types = (matrix(4000, 4000, 0.01), matrix(4000, 4000, 0.01))
        fmts = (csr_strips(1000), csr_strips(1000))
        assert ew.output_format(types, fmts, CLUSTER) == csr_strips(1000)

    def test_sparse_blocked_rejects_dense_output(self):
        # add of two half-dense matrices unions to ~0.75 sparsity: the
        # sparse output format no longer admits it.
        ew = impl("ew_sparse_add")
        types = (matrix(4000, 4000, 0.5), matrix(4000, 4000, 0.5))
        fmts = (csr_strips(1000), csr_strips(1000))
        assert ew.output_format(types, fmts, CLUSTER) is None


class TestUnaryImplementations:
    def test_map_preserves_any_format(self):
        m = impl("map_relu")
        t = (matrix(4000, 4000),)
        for fmt in (single(), tiles(1000), row_strips(1000)):
            assert m.output_format(t, (fmt,), CLUSTER) == fmt

    def test_transpose_flips_layout(self):
        t = impl("t_blocked")
        types = (matrix(4000, 2000),)
        out = t.output_format(types, (row_strips(1000),), CLUSTER)
        assert out is not None and out.is_col_partitioned

    def test_softmax_row_local_needs_complete_rows(self):
        s = impl("softmax_row_local")
        types = (matrix(4000, 4000),)
        assert s.output_format(types, (row_strips(1000),), CLUSTER) \
            == row_strips(1000)
        assert s.output_format(types, (col_strips(1000),), CLUSTER) is None

    def test_softmax_blocked_handles_column_splits(self):
        s = impl("softmax_blocked")
        types = (matrix(4000, 4000),)
        assert s.output_format(types, (tiles(1000),), CLUSTER) == tiles(1000)

    def test_inverse_single_only(self):
        inv = impl("inv_single")
        types = (matrix(2000, 2000),)
        assert inv.output_format(types, (single(),), CLUSTER) == single()
        assert inv.output_format(types, (tiles(1000),), CLUSTER) is None

    def test_add_bias_broadcast(self):
        ab = impl("add_bias_blocked")
        types = (matrix(4000, 4000), vector(4000))
        out = ab.output_format(types, (tiles(1000), single()), CLUSTER)
        assert out == tiles(1000)
        assert ab.join is JoinStrategy.BROADCAST


class TestFeatureSanity:
    @settings(max_examples=150, deadline=None)
    @given(st.sampled_from(DEFAULT_IMPLEMENTATIONS),
           st.sampled_from([matrix(3000, 3000), matrix(3000, 3000, 0.01),
                            matrix(1, 3000), matrix(3000, 1)]))
    def test_features_nonnegative_when_accepted(self, implementation, lhs):
        """Property: every accepted pattern yields sane cost features."""
        in_types = _types_for(implementation, lhs)
        if implementation.op.out_type(*in_types) is None:
            return
        for in_fmts, out in implementation.candidate_patterns(
                in_types, DEFAULT_FORMATS, CLUSTER):
            feats = implementation.features(in_types, in_fmts, CLUSTER)
            assert feats.flops >= 0
            assert feats.network_bytes >= 0
            assert feats.intermediate_bytes >= 0
            assert feats.tuples >= 0
            assert feats.max_worker_bytes >= 0
            assert feats.spill_bytes >= 0
            assert math.isfinite(feats.flops)
            break  # one pattern per impl per example keeps this fast


def _types_for(implementation, lhs):
    """Shape a compatible input-type tuple for any catalog implementation."""
    op = implementation.op
    if op.arity == 1:
        if op is INVERSE:
            return (matrix(lhs.rows, lhs.rows, lhs.sparsity),)
        return (lhs,)
    if op is MATMUL:
        return (lhs, matrix(lhs.cols, lhs.rows, lhs.sparsity))
    if op is ADD_BIAS:
        return (lhs, vector(lhs.cols))
    return (lhs, lhs)


class TestOutputTypeConsistency:
    @settings(max_examples=120, deadline=None)
    @given(st.sampled_from(DEFAULT_IMPLEMENTATIONS))
    def test_output_format_admits_output_type(self, implementation):
        """Type-correctness invariant: an implementation's output format
        must admit the atomic computation's output type."""
        lhs = matrix(3000, 3000, 0.01)
        in_types = _types_for(implementation, lhs)
        out_type = implementation.op.out_type(*in_types)
        if out_type is None:
            return
        for in_fmts, out_fmt in implementation.candidate_patterns(
                in_types, DEFAULT_FORMATS, CLUSTER):
            assert out_fmt.admits(out_type)
