"""Property tests for the rewrite pipeline.

Two invariants over a corpus of random and targeted expression graphs:

1. **Semantics preserved** — executing the plan optimized with
   ``rewrites="all"`` produces the same numbers (``np.allclose``) as the
   plan optimized with ``rewrites="none"``.
2. **Never worse** — the rewritten plan's predicted cost is at most the
   unrewritten plan's (the optimizer's fallback makes this a hard
   guarantee, not a heuristic).

The corpus includes one targeted graph per pass, and the suite asserts
every pass in the default order actually fired somewhere — so no pass can
silently rot.
"""

import numpy as np
import pytest

from repro.core.optimizer import optimize
from repro.core.registry import OptimizerContext
from repro.core.rewrites import DEFAULT_PASS_ORDER
from repro.engine.executor import execute_plan, simulate
from repro.lang import build, input_matrix, relu
from repro.lang.expr import Expr, add_bias, exp, sigmoid

RNG_SEED = 20260806
NUM_RANDOM_GRAPHS = 8


# ----------------------------------------------------------------------
# Corpus
# ----------------------------------------------------------------------
def _targeted_exprs() -> list[tuple[str, Expr]]:
    """One graph per pass, shaped so its pass certainly fires."""
    x = input_matrix("X", 60, 40)
    w = input_matrix("W", 40, 50)
    b = input_matrix("b", 1, 50)
    cse = (x @ w) + (x @ w)

    tx = input_matrix("TX", 10, 500)
    ty = input_matrix("TY", 10, 600)
    transpose = (tx.T @ ty).T

    a = input_matrix("A", 300, 10)
    bb = input_matrix("B", 10, 400)
    c = input_matrix("C", 400, 20)
    reassociate = (a @ bb) @ c

    q = input_matrix("Q", 300, 20)
    k = input_matrix("K", 20, 300)
    scalars = (q @ k) * 0.125

    fuse = relu(add_bias(x @ w, b)) * 0.5

    return [("cse", cse), ("transpose", transpose),
            ("reassociate", reassociate), ("scalars", scalars),
            ("fuse", fuse)]


def _random_expr(rng: np.random.Generator, tag: int) -> Expr:
    """A random expression DAG over small matrices."""
    dims = rng.choice([6, 10, 24, 40], size=3, replace=False)
    pool = [input_matrix(f"M{tag}_{i}",
                         int(dims[rng.integers(len(dims))]),
                         int(dims[rng.integers(len(dims))]))
            for i in range(3)]
    unaries = [relu, sigmoid, exp, lambda e: e * 0.5,
               lambda e: e.T, lambda e: e * -2.0]
    for _ in range(int(rng.integers(4, 9))):
        op = rng.integers(4)
        if op == 0:  # unary
            e = pool[rng.integers(len(pool))]
            pool.append(unaries[rng.integers(len(unaries))](e))
        elif op == 1:  # same-shape binary
            lhs = pool[rng.integers(len(pool))]
            mates = [e for e in pool if e.shape == lhs.shape]
            rhs = mates[rng.integers(len(mates))]
            pool.append([lambda a, b: a + b, lambda a, b: a - b,
                         lambda a, b: a * b][rng.integers(3)](lhs, rhs))
        elif op == 2:  # matmul
            lhs = pool[rng.integers(len(pool))]
            mates = [e for e in pool if e.shape[0] == lhs.shape[1]]
            if mates:
                pool.append(lhs @ mates[rng.integers(len(mates))])
        else:  # reuse a subexpression twice (builds sharing for CSE)
            e = pool[rng.integers(len(pool))]
            pool.append(e + e)
    return pool[-1]


def _inputs_for(graph, rng: np.random.Generator) -> dict[str, np.ndarray]:
    return {s.name: rng.standard_normal((s.mtype.rows, s.mtype.cols))
            for s in graph.sources}


def _corpus():
    rng = np.random.default_rng(RNG_SEED)
    cases = _targeted_exprs()
    cases += [(f"random{i}", _random_expr(rng, i))
              for i in range(NUM_RANDOM_GRAPHS)]
    return cases


CORPUS = _corpus()
_FIRED: set[str] = set()


@pytest.fixture(scope="module")
def ctx():
    return OptimizerContext()


@pytest.mark.parametrize("label,expr", CORPUS,
                         ids=[label for label, _ in CORPUS])
class TestRewriteProperties:
    def test_equal_results_and_never_worse(self, label, expr, ctx):
        graph = build(expr, cse=False)
        off = optimize(graph, ctx, rewrites="none")
        on = optimize(graph, ctx, rewrites="all")

        # Invariant 2: predicted cost never worse (fallback guarantees it).
        assert on.total_seconds <= off.total_seconds * (1 + 1e-12)

        if on.pipeline is not None and on.pipeline.adopted:
            _FIRED.update(p.name for p in on.pipeline.fired)

        # Invariant 1: identical numbers on real data.
        rng = np.random.default_rng(RNG_SEED + hash(label) % 1000)
        inputs = _inputs_for(graph, rng)
        res_off = execute_plan(off, inputs, ctx)
        res_on = execute_plan(on, inputs, ctx)
        assert res_off.ok and res_on.ok
        assert set(res_on.outputs) == set(res_off.outputs)
        for name, ref in res_off.outputs.items():
            np.testing.assert_allclose(
                res_on.outputs[name], ref, rtol=1e-7, atol=1e-9,
                err_msg=f"{label}: output {name!r} diverged under rewrites")

        # Simulated execution agrees with the optimizer's prediction.
        sim = simulate(on, ctx)
        assert sim.ok
        assert sim.seconds <= on.total_seconds * (1 + 1e-9)


def test_every_pass_fired_somewhere():
    """Runs after the parametrized corpus: each default pass must have
    fired on at least one corpus graph."""
    assert _FIRED >= set(DEFAULT_PASS_ORDER), \
        f"passes never exercised: {set(DEFAULT_PASS_ORDER) - _FIRED}"
