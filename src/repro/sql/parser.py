"""Parser for the matrix-SQL dialect.

Supports the statement forms the paper's examples use (Sections 1-2),
plus a LOAD statement for declaring physical load formats:

.. code-block:: sql

    CREATE TABLE matA (mat MATRIX[100][10000]);
    LOAD matA FORMAT 'row_strips(10)' SPARSITY 1.0;

    CREATE VIEW matAB (mat) AS
    SELECT matrix_multiply(x.mat, m.mat)
    FROM matA AS x, matB AS m;

Expressions are matrix-function applications over the FROM-list aliases;
nested calls are allowed (``relu(matrix_multiply(x.mat, w.mat))``).
"""

from __future__ import annotations

from dataclasses import dataclass

from .lexer import SqlSyntaxError, Token, TokenKind, tokenize


# ----------------------------------------------------------------------
# AST
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class CreateTable:
    name: str
    rows: int
    cols: int


@dataclass(frozen=True)
class Load:
    table: str
    format_spec: str | None
    sparsity: float | None


@dataclass(frozen=True)
class ColumnRef:
    alias: str
    column: str


@dataclass(frozen=True)
class NumberLiteral:
    value: float


@dataclass(frozen=True)
class FuncCall:
    name: str
    args: tuple


@dataclass(frozen=True)
class CreateView:
    name: str
    select: FuncCall | ColumnRef
    from_tables: tuple[tuple[str, str], ...]  # (table, alias)


Statement = CreateTable | Load | CreateView


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self.tokens = tokens
        self.pos = 0

    # -- token plumbing --------------------------------------------------
    @property
    def current(self) -> Token:
        return self.tokens[self.pos]

    def advance(self) -> Token:
        token = self.current
        self.pos += 1
        return token

    def error(self, message: str) -> SqlSyntaxError:
        t = self.current
        found = t.text or "<eof>"
        return SqlSyntaxError(f"{message}, found {found!r}", t.line, t.column)

    def expect_keyword(self, word: str) -> Token:
        if not self.current.is_keyword(word):
            raise self.error(f"expected {word}")
        return self.advance()

    def expect_symbol(self, sym: str) -> Token:
        if not self.current.is_symbol(sym):
            raise self.error(f"expected {sym!r}")
        return self.advance()

    def expect_ident(self) -> str:
        if self.current.kind is not TokenKind.IDENT:
            raise self.error("expected an identifier")
        return self.advance().text

    def expect_number(self) -> float:
        if self.current.kind is not TokenKind.NUMBER:
            raise self.error("expected a number")
        return float(self.advance().text)

    # -- grammar -----------------------------------------------------------
    def parse_script(self) -> list[Statement]:
        statements: list[Statement] = []
        while not self.current.kind is TokenKind.EOF:
            statements.append(self.parse_statement())
        return statements

    def parse_statement(self) -> Statement:
        if self.current.is_keyword("CREATE"):
            self.advance()
            if self.current.is_keyword("TABLE"):
                return self.parse_create_table()
            if self.current.is_keyword("VIEW"):
                return self.parse_create_view()
            raise self.error("expected TABLE or VIEW after CREATE")
        if self.current.is_keyword("LOAD"):
            return self.parse_load()
        raise self.error("expected CREATE or LOAD")

    def parse_create_table(self) -> CreateTable:
        self.expect_keyword("TABLE")
        name = self.expect_ident()
        self.expect_symbol("(")
        self.expect_ident()          # attribute name, e.g. "mat"
        self.expect_keyword("MATRIX")
        self.expect_symbol("[")
        rows = int(self.expect_number())
        self.expect_symbol("]")
        self.expect_symbol("[")
        cols = int(self.expect_number())
        self.expect_symbol("]")
        self.expect_symbol(")")
        self.expect_symbol(";")
        return CreateTable(name, rows, cols)

    def parse_load(self) -> Load:
        self.expect_keyword("LOAD")
        table = self.expect_ident()
        format_spec = None
        sparsity = None
        while not self.current.is_symbol(";"):
            if self.current.is_keyword("FORMAT"):
                self.advance()
                if self.current.kind is not TokenKind.STRING:
                    raise self.error("expected a quoted format spec")
                format_spec = self.advance().text
            elif self.current.is_keyword("SPARSITY"):
                self.advance()
                sparsity = self.expect_number()
            else:
                raise self.error("expected FORMAT, SPARSITY or ';'")
        self.expect_symbol(";")
        return Load(table, format_spec, sparsity)

    def parse_create_view(self) -> CreateView:
        self.expect_keyword("VIEW")
        name = self.expect_ident()
        if self.current.is_symbol("("):
            # Optional output column list, e.g. (mat) — names are cosmetic.
            self.advance()
            self.expect_ident()
            while self.current.is_symbol(","):
                self.advance()
                self.expect_ident()
            self.expect_symbol(")")
        self.expect_keyword("AS")
        self.expect_keyword("SELECT")
        select = self.parse_expression()
        self.expect_keyword("FROM")
        tables = [self.parse_from_item()]
        while self.current.is_symbol(","):
            self.advance()
            tables.append(self.parse_from_item())
        self.expect_symbol(";")
        return CreateView(name, select, tuple(tables))

    def parse_from_item(self) -> tuple[str, str]:
        table = self.expect_ident()
        alias = table
        if self.current.is_keyword("AS"):
            self.advance()
            alias = self.expect_ident()
        elif self.current.kind is TokenKind.IDENT:
            alias = self.advance().text
        return (table, alias)

    def parse_expression(self):
        if self.current.kind is TokenKind.NUMBER:
            return NumberLiteral(self.expect_number())
        name = self.expect_ident()
        if self.current.is_symbol("("):
            self.advance()
            args = []
            if not self.current.is_symbol(")"):
                args.append(self.parse_expression())
                while self.current.is_symbol(","):
                    self.advance()
                    args.append(self.parse_expression())
            self.expect_symbol(")")
            return FuncCall(name.lower(), tuple(args))
        if self.current.is_symbol("."):
            self.advance()
            column = self.expect_ident()
            return ColumnRef(name, column)
        # Bare table reference (treated as alias.mat).
        return ColumnRef(name, "mat")


def parse(source: str) -> list[Statement]:
    """Parse a matrix-SQL script into statements."""
    return _Parser(tokenize(source)).parse_script()
