"""Tests for annotated plans: evaluation semantics and reporting."""

import math

import pytest

from repro.cluster import simsql_cluster
from repro.core import (
    ComputeGraph,
    OptimizerContext,
    evaluate,
    matrix,
    optimize,
)
from repro.core.annotation import AnnotationError
from repro.core.atoms import MATMUL, RELU
from repro.core.formats import col_strips, row_strips, single, tiles


def _plan():
    g = ComputeGraph()
    a = g.add_source("A", matrix(300, 400), row_strips(100))
    b = g.add_source("B", matrix(400, 300), col_strips(100))
    ab = g.add_op("AB", MATMUL, (a, b))
    g.add_op("R", RELU, (ab,))
    ctx = OptimizerContext()
    return g, optimize(g, ctx), ctx


class TestEvaluate:
    def test_total_is_sum_of_parts(self):
        g, plan, ctx = _plan()
        cost = plan.cost
        assert cost.total_seconds == pytest.approx(
            cost.compute_seconds + cost.transform_seconds)

    def test_source_costs_are_zero(self):
        g, plan, ctx = _plan()
        for source in g.sources:
            assert plan.cost.vertex_seconds[source.vid] == 0.0

    def test_every_vertex_has_a_format(self):
        g, plan, ctx = _plan()
        assert set(plan.cost.vertex_formats) == set(g.vertex_ids)

    def test_reevaluation_is_stable(self):
        g, plan, ctx = _plan()
        again = evaluate(g, plan.annotation, ctx)
        assert again.total_seconds == pytest.approx(plan.total_seconds)

    def test_infeasible_stage_raises_by_default(self):
        """An annotation whose stage exceeds worker disk is rejected unless
        allow_infeasible is set."""
        from repro.baselines import plan_all_tile
        from repro.workloads.ffnn import FFNNConfig, ffnn_backprop_to_w2
        ctx = OptimizerContext(cluster=simsql_cluster(10))
        graph = ffnn_backprop_to_w2(FFNNConfig(hidden=160_000))
        failing = plan_all_tile(graph, ctx)  # built with allow_infeasible
        assert math.isinf(failing.total_seconds)
        with pytest.raises(AnnotationError):
            evaluate(graph, failing.annotation, ctx)
        tolerant = evaluate(graph, failing.annotation, ctx,
                            allow_infeasible=True)
        assert math.isinf(tolerant.total_seconds)


class TestPlanReporting:
    def test_describe_lists_choices(self):
        g, plan, ctx = _plan()
        text = plan.describe()
        assert "AB" in text
        assert any(i.name in text for i in plan.annotation.impls.values())
        assert "simulated seconds" in text

    def test_format_of(self):
        g, plan, ctx = _plan()
        sink = g.sinks()[0]
        assert plan.format_of(sink.vid) == plan.cost.vertex_formats[sink.vid]

    def test_describe_mentions_nonidentity_transforms(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(2000, 2000), single())
        b = g.add_source("B", matrix(2000, 2000), tiles(1000))
        g.add_op("AB", MATMUL, (a, b))
        ctx = OptimizerContext()
        from repro.experiments.harness import manual_plan
        plan = manual_plan(g, ctx,
                           {"AB": ("mm_tile_shuffle",
                                   (tiles(1000), tiles(1000)))})
        assert "single_to_tiles" in plan.describe()
