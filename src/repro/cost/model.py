"""The cost model: analytic features + regression weights -> seconds.

Paper Section 7: "At installation time, our implementation runs a set of
benchmark computations for which it collects the running time, and then it
uses the aforementioned analytically-computed features along with those
running times as input into a regression".  :mod:`repro.cost.calibration`
performs that fitting; this module holds the resulting model.

Each feature is first normalized by the relevant cluster capacity (FLOPs by
aggregate compute throughput, network bytes by aggregate bandwidth, ...), so
the learned weights are dimensionless efficiency factors near 1.0 and the
model extrapolates across cluster sizes.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..cluster import ClusterConfig
from .features import CostFeatures

#: Cost of an infeasible choice (the paper's ∞).
INFEASIBLE = math.inf


@dataclass(frozen=True)
class CostWeights:
    """Dimensionless regression weights, one per feature, plus latency."""

    flops: float = 1.0
    network: float = 1.0
    intermediate: float = 1.0
    tuples: float = 1.0
    latency: float = 1.0

    def as_vector(self) -> tuple[float, float, float, float, float]:
        return (self.flops, self.network, self.intermediate, self.tuples,
                self.latency)


#: Weights shipped with the library, produced by
#: :func:`repro.cost.calibration.calibrate` on the reference simulator.
DEFAULT_WEIGHTS = CostWeights()


class CostModel:
    """Converts :class:`CostFeatures` into (simulated) seconds."""

    def __init__(self, cluster: ClusterConfig,
                 weights: CostWeights = DEFAULT_WEIGHTS) -> None:
        self.cluster = cluster
        self.weights = weights

    # ------------------------------------------------------------------
    def normalized(self, features: CostFeatures) -> tuple[float, ...]:
        """Per-feature raw times before weighting (the regression inputs)."""
        c = self.cluster
        compute_time = features.flops / c.total_flops_per_sec
        network_time = features.network_bytes / c.aggregate_network_bytes_per_sec
        memory_time = (features.intermediate_bytes
                       / (c.num_workers * c.memory_bytes_per_sec))
        tuple_time = (features.tuples * c.per_tuple_seconds
                      / c.num_workers)
        latency = c.stage_latency_seconds if self._is_nonempty(features) else 0.0
        return (compute_time, network_time, memory_time, tuple_time, latency)

    @staticmethod
    def _is_nonempty(features: CostFeatures) -> bool:
        return (features.flops > 0 or features.network_bytes > 0
                or features.intermediate_bytes > 0 or features.tuples > 0)

    def seconds(self, features: CostFeatures) -> float:
        """Predicted running time of a stage with the given features.

        Returns :data:`INFEASIBLE` when the stage's RAM-resident working set
        exceeds worker RAM, or its spillable data exceeds worker disk — the
        cost-model analogues of the paper's "Fail" entries (crashes from
        "too much intermediate data").
        """
        if features.max_worker_bytes > self.cluster.ram_bytes:
            return INFEASIBLE
        if features.spill_bytes > self.cluster.disk_bytes:
            return INFEASIBLE
        parts = self.normalized(features)
        w = self.weights.as_vector()
        return sum(p * wi for p, wi in zip(parts, w))

    # ------------------------------------------------------------------
    def batch_seconds(self, features: Sequence[CostFeatures]) -> np.ndarray:
        """Vectorized :meth:`seconds` over many feature rows.

        Returns a ``float64`` array with ``out[i] == seconds(features[i])``
        **bit for bit**: the per-feature normalizations and the weighted sum
        are evaluated with the same IEEE-754 operations in the same order as
        the scalar path (one division per feature, then products accumulated
        left to right starting from ``+0.0``), so the vectorized frontier can
        use these costs interchangeably with memoized scalar ones.
        """
        n = len(features)
        out = np.zeros(n, dtype=np.float64)
        if n == 0:
            return out
        c = self.cluster
        cols = np.empty((7, n), dtype=np.float64)
        for i, f in enumerate(features):
            cols[0, i] = f.flops
            cols[1, i] = f.network_bytes
            cols[2, i] = f.intermediate_bytes
            cols[3, i] = f.tuples
            cols[4, i] = c.stage_latency_seconds \
                if self._is_nonempty(f) else 0.0
            cols[5, i] = f.max_worker_bytes
            cols[6, i] = f.spill_bytes
        parts = (
            cols[0] / c.total_flops_per_sec,
            cols[1] / c.aggregate_network_bytes_per_sec,
            cols[2] / (c.num_workers * c.memory_bytes_per_sec),
            cols[3] * c.per_tuple_seconds / c.num_workers,
            cols[4],
        )
        for p, wi in zip(parts, self.weights.as_vector()):
            out += p * wi
        infeasible = (cols[5] > c.ram_bytes) | (cols[6] > c.disk_bytes)
        out[infeasible] = INFEASIBLE
        return out
