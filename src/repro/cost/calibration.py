"""Cost-model calibration (paper Section 7).

"At installation time, our implementation runs a set of benchmark
computations for which it collects the running time, and then it uses the
analytically-computed features along with those running times as input into
a regression."

Here the ground truth is the relational engine's *measured* ledger (actual
bytes shuffled/broadcast, tuples produced) on a suite of small benchmark
plans; the regression fits the dimensionless :class:`CostWeights` that make
the analytic features predict those measurements.  On a physical cluster the
same pipeline would fit against wall-clock times instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..cluster import ClusterConfig
from .features import CostFeatures
from .model import CostModel, CostWeights, DEFAULT_WEIGHTS


@dataclass(frozen=True)
class CalibrationSample:
    """One benchmark observation: analytic features and measured seconds."""

    features: CostFeatures
    measured_seconds: float


def fit_weights(samples: list[CalibrationSample],
                cluster: ClusterConfig,
                ridge: float = 1e-9) -> CostWeights:
    """Non-negative least squares fit of the per-feature weights.

    Features are first normalized by cluster capacity (as in
    :meth:`CostModel.normalized`), so the fitted weights are efficiency
    factors.  A tiny ridge term keeps the system well posed when a feature
    never varies in the sample set; weights are clipped at a small positive
    floor so no cost component can be fitted away entirely.
    """
    if not samples:
        raise ValueError("need at least one calibration sample")
    reference = CostModel(cluster, DEFAULT_WEIGHTS)
    design = np.array([reference.normalized(s.features) for s in samples])
    target = np.array([s.measured_seconds for s in samples])
    n_features = design.shape[1]
    lhs = design.T @ design + ridge * np.eye(n_features)
    rhs = design.T @ target
    solution = np.linalg.solve(lhs, rhs)
    solution = np.clip(solution, 0.05, None)
    return CostWeights(*solution)


def default_benchmark_samples(cluster: ClusterConfig,
                              seed: int = 0) -> list[CalibrationSample]:
    """Run the installation-time benchmark suite on the relational engine.

    Executes a handful of small plans (matmuls in several formats,
    element-wise ops, transforms) on real data and pairs each plan's
    *analytic* features with its *measured* ledger seconds.
    """
    # Imported here: the engine depends on core, which depends on this
    # package, so a module-level import would be circular.
    from ..core import OptimizerContext, matrix, optimize
    from ..core import col_strips, row_strips, single, tiles
    from ..core.atoms import ADD, MATMUL, RELU
    from ..core.graph import ComputeGraph
    from ..engine.executor import Executor
    from ..workloads.datagen import dense_normal

    ctx = OptimizerContext(cluster=cluster)
    samples: list[CalibrationSample] = []
    shapes = [
        (400, 600, 300, row_strips(100), col_strips(100)),
        (500, 500, 500, tiles(100), tiles(100)),
        (200, 800, 400, single(), col_strips(200)),
    ]
    for i, (m, k, n, f_a, f_b) in enumerate(shapes):
        g = ComputeGraph()
        a = g.add_source("A", matrix(m, k), f_a)
        b = g.add_source("B", matrix(k, n), f_b)
        ab = g.add_op("AB", MATMUL, (a, b))
        g.add_op("R", RELU, (ab,))
        plan = optimize(g, ctx)
        executor = Executor(plan, ctx)
        result = executor.run({
            "A": dense_normal(m, k, seed=seed + i),
            "B": dense_normal(k, n, seed=seed + i + 100),
        })
        samples.append(CalibrationSample(plan.cost.features,
                                         result.ledger.total_seconds))

    g = ComputeGraph()
    a = g.add_source("A", matrix(600, 600), tiles(200))
    b = g.add_source("B", matrix(600, 600), tiles(200))
    g.add_op("S", ADD, (a, b))
    plan = optimize(g, ctx)
    result = Executor(plan, ctx).run({
        "A": dense_normal(600, 600, seed=seed + 7),
        "B": dense_normal(600, 600, seed=seed + 8),
    })
    samples.append(CalibrationSample(plan.cost.features,
                                     result.ledger.total_seconds))
    return samples


def calibrate(cluster: ClusterConfig, seed: int = 0) -> CostWeights:
    """End-to-end installation-time calibration."""
    return fit_weights(default_benchmark_samples(cluster, seed=seed), cluster)
