"""Tests for sparsity estimation: scalar, MNC sketches, re-optimization."""

import math

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.cost.sparsity import (
    DEFAULT_REOPT_THRESHOLD,
    MncSketch,
    observed_sparsity,
    relative_error,
    should_reoptimize,
)
from repro.core.types import matmul_sparsity, matrix

RNG = np.random.default_rng(11)


def _sparse(rows, cols, density, seed=0):
    rng = np.random.default_rng(seed)
    return (rng.standard_normal((rows, cols))
            * (rng.random((rows, cols)) < density))


def _skewed_sparse(rows, cols, seed=0):
    """Sparse matrix whose density varies strongly per row (structured)."""
    rng = np.random.default_rng(seed)
    row_density = rng.random(rows) ** 3  # most rows near-empty
    mask = rng.random((rows, cols)) < row_density[:, None]
    return rng.standard_normal((rows, cols)) * mask


class TestRelativeError:
    def test_perfect(self):
        assert relative_error(0.5, 0.5) == 1.0

    def test_symmetric(self):
        assert relative_error(0.1, 0.2) == relative_error(0.2, 0.1)

    def test_zero_cases(self):
        assert relative_error(0.0, 0.0) == 1.0
        assert relative_error(0.0, 0.5) == math.inf

    def test_reoptimize_threshold(self):
        assert not should_reoptimize(0.5, 0.55)
        assert should_reoptimize(0.5, 0.1)
        assert DEFAULT_REOPT_THRESHOLD == pytest.approx(1.2)


class TestObservedSparsity:
    def test_dense_array(self):
        m = np.array([[1.0, 0.0], [0.0, 2.0]])
        assert observed_sparsity(m) == 0.5

    def test_scipy_sparse(self):
        m = sp.csr_matrix(np.eye(4))
        assert observed_sparsity(m) == pytest.approx(0.25)


class TestMncSketch:
    def test_from_matrix_exact_counts(self):
        m = np.array([[1.0, 0.0, 2.0], [0.0, 0.0, 0.0]])
        sk = MncSketch.from_matrix(m)
        assert list(sk.h_row) == [2.0, 0.0]
        assert list(sk.h_col) == [1.0, 0.0, 1.0]
        assert sk.nnz == 2

    def test_from_scipy(self):
        m = sp.csr_matrix(np.eye(5))
        sk = MncSketch.from_matrix(m)
        assert sk.nnz == 5
        assert np.allclose(sk.h_row, 1.0)

    def test_from_type_uniform(self):
        sk = MncSketch.from_type(matrix(10, 20, 0.5))
        assert sk.sparsity == pytest.approx(0.5)

    def test_transpose(self):
        m = _sparse(20, 30, 0.2, seed=1)
        sk = MncSketch.from_matrix(m).transpose()
        ref = MncSketch.from_matrix(m.T)
        assert np.allclose(sk.h_row, ref.h_row)
        assert np.allclose(sk.h_col, ref.h_col)

    def test_union_bounds(self):
        a = MncSketch.from_matrix(_sparse(20, 20, 0.3, seed=2))
        b = MncSketch.from_matrix(_sparse(20, 20, 0.3, seed=3))
        u = a.elementwise_union(b)
        assert u.nnz <= 20 * 20
        assert u.nnz >= max(a.nnz, b.nnz)

    def test_intersection_smaller_than_either(self):
        a = MncSketch.from_matrix(_sparse(20, 20, 0.4, seed=2))
        b = MncSketch.from_matrix(_sparse(20, 20, 0.4, seed=3))
        i = a.elementwise_intersect(b)
        assert i.nnz <= min(a.nnz, b.nnz) + 1e-9

    def test_shape_mismatch_rejected(self):
        a = MncSketch.from_type(matrix(3, 4))
        b = MncSketch.from_type(matrix(4, 3))
        with pytest.raises(ValueError):
            a.elementwise_union(b)
        with pytest.raises(ValueError):
            a.matmul(MncSketch.from_type(matrix(5, 5)))

    def test_densify(self):
        sk = MncSketch.from_type(matrix(5, 5, 0.1)).densify()
        assert sk.sparsity == 1.0

    def test_empty_rows_propagate_through_matmul(self):
        a = np.zeros((4, 4))
        a[0, 0] = 1.0  # only row 0 occupied
        b = np.eye(4)
        sk = MncSketch.from_matrix(a).matmul(MncSketch.from_matrix(b))
        assert sk.h_row[1] == 0.0
        assert sk.h_row[0] > 0.0

    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10_000))
    def test_matmul_estimate_in_bounds(self, seed):
        a = _sparse(30, 40, 0.15, seed=seed)
        b = _sparse(40, 25, 0.15, seed=seed + 1)
        est = MncSketch.from_matrix(a).matmul(MncSketch.from_matrix(b))
        assert 0.0 <= est.sparsity <= 1.0
        assert np.all(est.h_row >= -1e-9)
        assert np.all(est.h_row <= 25 + 1e-9)

    def test_mnc_beats_scalar_on_structured_matrices(self):
        """The point of MNC (Sommer et al.): structure-aware estimates are
        far more accurate than scalar sparsity on skewed data."""
        mnc_errors, scalar_errors = [], []
        for seed in range(12):
            a = _skewed_sparse(60, 80, seed=seed)
            b = _skewed_sparse(80, 50, seed=seed + 100).T.T
            true = observed_sparsity((a @ b))
            if true == 0.0:
                continue
            mnc = MncSketch.from_matrix(a).matmul(
                MncSketch.from_matrix(b)).sparsity
            scalar = matmul_sparsity(
                matrix(60, 80, observed_sparsity(a)),
                matrix(80, 50, observed_sparsity(b)))
            mnc_errors.append(relative_error(mnc, true))
            scalar_errors.append(relative_error(scalar, true))
        assert np.median(mnc_errors) <= np.median(scalar_errors)

    def test_mnc_reasonably_accurate_on_uniform(self):
        a = _sparse(100, 100, 0.05, seed=5)
        b = _sparse(100, 100, 0.05, seed=6)
        true = observed_sparsity(a @ b)
        est = MncSketch.from_matrix(a).matmul(MncSketch.from_matrix(b))
        assert relative_error(est.sparsity, true) < 1.6
