"""Admission control: single-flight coalescing and batch admission.

When many clients ask the planner for the same fingerprint at the same
moment, only the first (the *leader*) runs the optimization; the rest
block until the leader finishes and then share its result
(:class:`SingleFlight`).  This is the de-duplication half of admission
control: without it, a cold popular query stampedes the optimizer
exactly when it is most expensive.

:class:`AdmissionBatcher` extends the same idea to *different* queries
arriving together: concurrent single-query requests with the same knobs
are held open for a short window and submitted as one
:meth:`~repro.service.planner.PlannerService.optimize_batch` call, so
cross-query sharing (see :mod:`repro.core.batch`) kicks in without any
caller coordinating a batch explicitly.
"""

from __future__ import annotations

import threading
from typing import Any, Callable, Hashable

__all__ = ["AdmissionBatcher", "SingleFlight"]


class _Call:
    """One in-flight computation and the crowd waiting on it."""

    __slots__ = ("done", "result", "error", "waiters")

    def __init__(self) -> None:
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None
        self.waiters = 0


class SingleFlight:
    """Coalesces concurrent calls that share a key.

    Thread safe.  Sequential calls with the same key each run ``fn`` —
    de-duplication across *time* is the cache's job, not this class's.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._calls: dict[Hashable, _Call] = {}

    def run(self, key: Hashable, fn: Callable[[], Any]
            ) -> tuple[Any, bool]:
        """Run ``fn`` once per concurrent crowd of ``key``.

        Returns ``(result, is_leader)``: the leader executed ``fn``;
        followers receive the leader's result (or re-raise its exception)
        without executing anything.
        """
        with self._lock:
            call = self._calls.get(key)
            if call is None:
                call = self._calls[key] = _Call()
                leader = True
            else:
                call.waiters += 1
                leader = False

        if not leader:
            call.done.wait()
            if call.error is not None:
                raise call.error
            return call.result, False

        try:
            call.result = fn()
        except BaseException as exc:
            call.error = exc
            raise
        finally:
            with self._lock:
                del self._calls[key]
            call.done.set()
        return call.result, True

    def waiting(self, key: Hashable) -> int:
        """Followers currently blocked on ``key`` (0 when not in flight)."""
        with self._lock:
            call = self._calls.get(key)
            return call.waiters if call is not None else 0


class _PendingBatch:
    """One open admission window and the requests riding in it."""

    __slots__ = ("ctx", "knobs", "graphs", "closed", "full", "done",
                 "result", "error")

    def __init__(self, ctx: Any, knobs: dict) -> None:
        self.ctx = ctx
        self.knobs = knobs
        self.graphs: list = []
        self.closed = False
        #: Set when the window reaches ``max_batch``; wakes the leader
        #: early so a full batch never waits out the whole window.
        self.full = threading.Event()
        self.done = threading.Event()
        self.result: Any = None
        self.error: BaseException | None = None


class AdmissionBatcher:
    """Coalesces concurrent solo planning requests into one batch.

    The first request for a given ``(context, knobs)`` group becomes the
    *leader*: it holds the admission window open for ``window_seconds``
    (or until ``max_batch`` requests have joined, whichever is first),
    then submits every collected graph as one
    ``service.optimize_batch(...)`` call.  Each caller gets back its own
    per-query :class:`~repro.core.annotation.Plan` from the resulting
    :class:`~repro.core.batch.BatchPlan`, in arrival order.  Requests
    with different knobs (or different explicit contexts) never batch
    together — they would not be jointly plannable.  Thread safe.
    """

    def __init__(self, service, *, window_seconds: float = 0.01,
                 max_batch: int = 8) -> None:
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if window_seconds < 0:
            raise ValueError("window_seconds must be >= 0, "
                             f"got {window_seconds}")
        self.service = service
        self.window_seconds = window_seconds
        self.max_batch = max_batch
        self._lock = threading.Lock()
        self._open: dict[Hashable, _PendingBatch] = {}
        self.batches = 0
        self.coalesced = 0

    def submit(self, graph, ctx=None, **knobs):
        """Plan ``graph``, batched with whoever else shows up in time.

        Blocks until the batch's leader has planned (at most the window
        plus one batch optimization); returns this request's plan.  A
        planner error is re-raised in every rider of the batch.
        """
        key = (id(ctx), tuple(sorted(knobs.items())))
        with self._lock:
            batch = self._open.get(key)
            if batch is None or batch.closed or \
                    len(batch.graphs) >= self.max_batch:
                batch = _PendingBatch(ctx, dict(knobs))
                self._open[key] = batch
                leader = True
            else:
                leader = False
            index = len(batch.graphs)
            batch.graphs.append(graph)
            if len(batch.graphs) >= self.max_batch:
                batch.full.set()

        if leader:
            if self.max_batch > 1:
                batch.full.wait(self.window_seconds)
            with self._lock:
                batch.closed = True
                if self._open.get(key) is batch:
                    del self._open[key]
                self.batches += 1
                self.coalesced += len(batch.graphs) - 1
            try:
                batch.result = self.service.optimize_batch(
                    batch.graphs, batch.ctx, **batch.knobs)
            except BaseException as exc:
                batch.error = exc
            batch.done.set()
        else:
            batch.done.wait()

        if batch.error is not None:
            raise batch.error
        return batch.result.queries[index].plan

    def stats(self) -> dict[str, int]:
        """Lifetime batching counters."""
        with self._lock:
            return {"batches": self.batches, "coalesced": self.coalesced}
