"""Multi-query (batch) optimization: one search over N stitched queries.

A production planner rarely sees one query at a time: tenants submit
structurally overlapping requests (shared feature pipelines, shared model
forward passes) whose common subexpressions would each be re-planned and
re-materialized in isolation.  :func:`optimize_batch` stitches N query
graphs into one multi-sink DAG by cross-query CSE over the canonical
vertex fingerprints of :func:`repro.core.fingerprint.subplan_fingerprint`
— two vertices merge exactly when they compute the same value from the
same named inputs — and runs the existing frontier DP *once* over the
merged DAG.  The frontier algorithm already costs shared ancestors once
within a single DAG (paper Algorithm 4 is multi-sink by construction), so
batching extends that sharing across query boundaries for free.

The result is a :class:`BatchPlan`: the one merged plan (what a batch
executor runs), plus per-query :class:`~repro.core.annotation.Plan`\\ s
re-annotated onto each original query graph so every tenant still gets an
independently executable, independently costed plan.  Per-query profiles
carry shared-subplan provenance (``batch_queries``/``shared_subplans`` in
:class:`~repro.core.profile.OptimizerProfile`).

Correctness contract (enforced permanently by
``tests/core/test_batch_differential.py``): per-query numerics are
``allclose`` to independently optimized solo plans, the merged batch cost
never exceeds the sum of solo costs, and the ``array`` and ``object``
frontiers agree bit-identically on the merged DAG.
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass

from .annotation import Annotation, Plan, make_plan
from .fingerprint import subplan_fingerprint
from .graph import ComputeGraph, Edge, VertexId
from .optimizer import (ALGORITHMS, context_for_graph, optimize,
                        rewrite_stage)
from .frontier import FRONTIERS
from .profile import OptimizerProfile
from .registry import OptimizerContext
from .rewrites import RewriteSpec, validate_rewrites

__all__ = ["BatchPlan", "BatchQuery", "merge_graphs", "optimize_batch"]


@dataclass(frozen=True)
class BatchQuery:
    """One query's view of a batch optimization."""

    #: Position of this query in the submitted batch.
    index: int
    #: The (rewritten) query graph the per-query plan annotates.
    graph: ComputeGraph
    #: Independently executable plan for this query alone.  Its cost is
    #: solo accounting: shared vertices are charged in full, because the
    #: plan recomputes them when executed outside the batch.
    plan: Plan
    #: Query vertex id -> merged-DAG vertex id.
    vertex_map: dict[VertexId, VertexId]
    #: Names of this query's vertices whose results at least one other
    #: batch member also computes (cross-query CSE provenance).
    shared: tuple[str, ...]
    #: Query output name -> merged-DAG vertex id, for splitting a batch
    #: execution's results back out per tenant.
    output_vertices: dict[str, VertexId]


@dataclass(frozen=True)
class BatchPlan:
    """The outcome of one multi-query batch optimization."""

    #: The stitched multi-sink DAG all queries were planned against.
    graph: ComputeGraph
    #: The one plan the merged search produced; executing it computes
    #: every query's outputs with shared subexpressions done once.
    merged: Plan
    #: Per-query views, in submission order.
    queries: tuple[BatchQuery, ...]
    #: Merged-DAG vertex ids used by more than one query.
    shared_vertices: tuple[VertexId, ...]
    #: Inner (op) vertices deduplicated by cross-query CSE: the number of
    #: op-vertex instances across the submitted graphs that resolved to
    #: an already-stitched vertex.
    cse_hits: int
    #: Wall-clock seconds of the whole batch optimization (stitch +
    #: merged search + per-query extraction).
    optimize_seconds: float = 0.0

    @property
    def plans(self) -> tuple[Plan, ...]:
        """Per-query plans in submission order."""
        return tuple(q.plan for q in self.queries)

    @property
    def total_seconds(self) -> float:
        """Predicted cost of executing the whole batch (shared once)."""
        return self.merged.total_seconds

    def query_outputs(self, index: int, vertex_values: dict) -> dict:
        """Split a merged execution's per-vertex values for one query.

        ``vertex_values`` is the ``vertex_values`` mapping of an
        :class:`~repro.engine.executor.ExecutionResult` from running
        :attr:`merged`; returns ``{query output name: value}``.
        """
        query = self.queries[index]
        return {name: vertex_values[mvid]
                for name, mvid in query.output_vertices.items()}

    def as_cache_hit(self) -> "BatchPlan":
        """Copy with every profile flagged as served from the plan cache."""
        return dataclasses.replace(
            self,
            merged=_mark_hit(self.merged),
            queries=tuple(dataclasses.replace(q, plan=_mark_hit(q.plan))
                          for q in self.queries))


def _mark_hit(plan: Plan) -> Plan:
    if plan.profile is None:
        return plan
    return dataclasses.replace(
        plan, profile=dataclasses.replace(plan.profile, cache_hit=True))


def merge_graphs(graphs) -> tuple[ComputeGraph, list[dict[VertexId,
                                                          VertexId]],
                                  dict[VertexId, set[int]], int]:
    """Stitch query graphs into one multi-sink DAG by cross-query CSE.

    Vertices are keyed by :func:`subplan_fingerprint` of their ancestor
    cone: sources merge when name, type and stored format all agree (the
    executor binds data by name, so one name must mean one matrix — a
    conflicting re-declaration raises ``ValueError``); op vertices merge
    when they apply the same op to already-merged inputs with the same
    scalar parameter, regardless of their labels.  Each query's declared
    outputs are marked on the merged graph, so the frontier DP plans all
    sinks jointly.

    Returns ``(merged graph, per-query vid maps, merged vid -> set of
    query indices using it, op-vertex CSE hit count)``.
    """
    merged = ComputeGraph()
    by_key: dict[str, VertexId] = {}
    source_key: dict[str, str] = {}
    names_used: set[str] = set()
    maps: list[dict[VertexId, VertexId]] = []
    used_by: dict[VertexId, set[int]] = {}
    cse_hits = 0
    for qi, graph in enumerate(graphs):
        vmap: dict[VertexId, VertexId] = {}
        for vid in graph.topological_order():
            v = graph.vertex(vid)
            key = subplan_fingerprint(graph, vid)
            if v.is_source:
                prior = source_key.get(v.name)
                if prior is not None and prior != key:
                    raise ValueError(
                        f"batch queries disagree on source {v.name!r}: "
                        "the same name must carry the same matrix type "
                        "and stored format in every query")
                source_key[v.name] = key
            mvid = by_key.get(key)
            if mvid is None:
                name = _unique_name(v.name, names_used)
                names_used.add(name)
                if v.is_source:
                    mvid = merged.add_source(name, v.mtype, v.format)
                else:
                    mvid = merged.add_op(
                        name, v.op, tuple(vmap[p] for p in v.inputs),
                        param=v.param)
                by_key[key] = mvid
            elif not v.is_source:
                cse_hits += 1
            vmap[vid] = mvid
            used_by.setdefault(mvid, set()).add(qi)
        for out in graph.outputs:
            merged.mark_output(vmap[out.vid])
        maps.append(vmap)
    return merged, maps, used_by, cse_hits


def _unique_name(name: str, used: set[str]) -> str:
    if name not in used:
        return name
    suffix = 2
    while f"{name}~{suffix}" in used:
        suffix += 1
    return f"{name}~{suffix}"


def optimize_batch(graphs, ctx: OptimizerContext | None = None, *,
                   algorithm: str = "auto",
                   timeout_seconds: float | None = None,
                   max_states: int | None = None,
                   rewrites: RewriteSpec = "none",
                   prune: bool | None = None,
                   order: str = "class-size",
                   frontier: str = "array",
                   tracer=None,
                   metrics=None) -> BatchPlan:
    """Jointly optimize N query graphs with cross-query sharing.

    Accepts the same knobs as :func:`repro.core.optimizer.optimize`.
    Rewrites (when enabled) run per query *before* stitching, so the
    merged DAG's vertex maps stay valid; the physical search then runs
    once over the merged multi-sink DAG.  Per-query plans are the merged
    search's choices re-annotated onto each (rewritten) query graph —
    independently executable, with solo-accounting costs and
    shared-subplan provenance in their profiles.
    """
    graphs = tuple(graphs)
    if not graphs:
        raise ValueError("optimize_batch needs at least one query graph")
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ALGORITHMS}")
    if frontier not in FRONTIERS:
        raise ValueError(f"unknown frontier {frontier!r}; "
                         f"expected one of {FRONTIERS}")
    validate_rewrites(rewrites)
    if ctx is None:
        ctx = OptimizerContext()

    t0 = time.perf_counter()
    rewritten = []
    for graph in graphs:
        qctx = context_for_graph(graph, ctx)
        rgraph, _ = rewrite_stage(graph, qctx, rewrites, tracer)
        rewritten.append(rgraph)

    merged_graph, maps, used_by, cse_hits = merge_graphs(rewritten)
    merged_plan = optimize(merged_graph, ctx, algorithm=algorithm,
                           timeout_seconds=timeout_seconds,
                           max_states=max_states, rewrites="none",
                           prune=prune, order=order, frontier=frontier,
                           tracer=tracer, metrics=metrics)

    shared = tuple(sorted(mv for mv, users in used_by.items()
                          if len(users) > 1))
    shared_set = set(shared)
    merged_transforms = {
        (e.src, e.dst, e.arg_pos): chosen
        for e, chosen in merged_plan.annotation.transforms.items()}

    base_profile = merged_plan.profile
    if base_profile is None:
        base_profile = OptimizerProfile(algorithm=merged_plan.optimizer)

    queries = []
    for qi, rgraph in enumerate(rewritten):
        vmap = maps[qi]
        ann = Annotation()
        for v in rgraph.inner_vertices:
            ann.impls[v.vid] = merged_plan.annotation.impls[vmap[v.vid]]
            for edge in rgraph.in_edges(v.vid):
                ann.transforms[edge] = merged_transforms[
                    (vmap[edge.src], vmap[edge.dst],
                     _merged_arg_pos(merged_graph, vmap, edge))]
        shared_names = tuple(sorted(
            rgraph.vertex(qv).name for qv, mv in vmap.items()
            if mv in shared_set and not rgraph.vertex(qv).is_source))
        profile = dataclasses.replace(base_profile,
                                      batch_queries=len(graphs),
                                      shared_subplans=shared_names)
        plan = make_plan(rgraph, ann, context_for_graph(rgraph, ctx),
                         optimizer=f"batch[{merged_plan.optimizer}]",
                         optimize_seconds=merged_plan.optimize_seconds,
                         profile=profile)
        outputs = {rgraph.vertex(out.vid).name: vmap[out.vid]
                   for out in rgraph.outputs}
        queries.append(BatchQuery(qi, rgraph, plan, vmap, shared_names,
                                  outputs))

    merged_shared_names = tuple(sorted(
        merged_graph.vertex(mv).name for mv in shared
        if not merged_graph.vertex(mv).is_source))
    merged_plan = dataclasses.replace(
        merged_plan,
        profile=dataclasses.replace(base_profile,
                                    batch_queries=len(graphs),
                                    shared_subplans=merged_shared_names))
    elapsed = time.perf_counter() - t0
    return BatchPlan(merged_graph, merged_plan, tuple(queries), shared,
                     cse_hits, optimize_seconds=elapsed)


def _merged_arg_pos(merged_graph: ComputeGraph,
                    vmap: dict[VertexId, VertexId], edge: Edge) -> int:
    """Argument slot of a query edge in the merged consumer vertex.

    Slots normally coincide, but intra-query CSE can collapse two query
    inputs onto one merged vertex, so the merged consumer's input tuple
    is matched positionally instead of assuming ``edge.arg_pos``.
    """
    consumer = merged_graph.vertex(vmap[edge.dst])
    if (edge.arg_pos < len(consumer.inputs)
            and consumer.inputs[edge.arg_pos] == vmap[edge.src]):
        return edge.arg_pos
    return consumer.inputs.index(vmap[edge.src])
