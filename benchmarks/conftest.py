"""Shared fixtures and helpers for the benchmark harness.

Each ``test_figXX_*.py`` regenerates one table/figure of the paper: it runs
the experiment, prints the table (ours vs the paper's published values), and
asserts the paper's *shape* findings — orderings and failure patterns — as
hard test conditions.  pytest-benchmark timings cover the optimizer calls
themselves (which is exactly what the paper's Fig 13 measures).

Run with::

    pytest benchmarks/ --benchmark-only
"""

from __future__ import annotations

import math

import pytest


def parse_cell(cell: str) -> float:
    """Parse an 'ours [paper]' table cell into our seconds (inf = Fail)."""
    ours = cell.split(" [")[0].strip()
    ours = ours.split(" (")[0].strip()  # drop opt-time suffix
    if ours.rstrip("*") == "Fail":
        return math.inf
    parts = [int(p) for p in ours.rstrip("*").split(":")]
    while len(parts) < 3:
        parts.insert(0, 0)
    return float(parts[0] * 3600 + parts[1] * 60 + parts[2])


@pytest.fixture(scope="session")
def print_table():
    """Print a rendered experiment table beneath the benchmark output."""
    def _print(table):
        print()
        print(table.render())
        return table
    return _print
