"""Distributed relational engine simulator (the SimSQL/PlinyCompute stand-in)."""

from ..cluster import DEFAULT_CLUSTER, ClusterConfig
from .executor import (
    ExecutionResult,
    Executor,
    SimulationResult,
    execute_plan,
    format_hms,
    simulate,
)
from .faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    ScheduledFault,
    TransientShuffleError,
    WorkerCrash,
)
from .checkpoint import (
    CheckpointError,
    ExecutionCheckpoint,
    checkpoint,
    restore_into,
    resume,
    run_to_frontier,
)
from .dynamics import (
    DynamicsConfig,
    DynamicsEventReport,
    DynamicsResult,
    ReplanReport,
    execute_with_dynamics,
)
from .intermediate import (
    CacheEntry,
    IntermediateStore,
    PreloadReport,
    harvest_state,
    preload_state,
    stage_cache_keys,
)
from .ledger import (
    CATEGORIES,
    INTERMEDIATE_CACHE,
    RECOVERY,
    REPLAN,
    STRAGGLER,
    WORK,
    EngineFailure,
    StageRecord,
    TrafficLedger,
)
from .membership import (
    ChurnConfig,
    HeartbeatConfig,
    HeartbeatDetector,
    MembershipEvent,
    MembershipEventKind,
    MembershipView,
    WorkerTimeline,
    crash_at_frontier,
)
from .recovery import (
    DEFAULT_RECOVERY,
    FallbackRecord,
    FaultRetriesExhausted,
    LineageCheckpoint,
    RecoveryPolicy,
    RecoveryStats,
    RobustExecutionResult,
    RobustSimulationResult,
    SpeculationPolicy,
    execute_robust,
    plan_context,
    simulate_robust,
)
from .relation import Relation, RelationalEngine, payload_bytes
from .reopt import AdaptiveResult, execute_adaptive
from .scheduler import (
    SCHEDULERS,
    ExecutionState,
    ProcessPoolScheduler,
    Scheduler,
    SequentialScheduler,
    ThreadPoolScheduler,
    resolve_scheduler,
)
from .stages import BoundKernel, OpStage, StageGraph, StageNode, \
    TransformStage, lower
from .storage import StoredMatrix, assemble, convert, infer_format, split, \
    store_as
from .trace import ScheduledStage, Timeline, schedule, timeline_of

__all__ = [
    "DEFAULT_CLUSTER", "ClusterConfig",
    "ExecutionResult", "Executor", "SimulationResult", "execute_plan",
    "format_hms", "simulate",
    "FaultConfig", "FaultEvent", "FaultInjector", "FaultKind", "FaultPlan",
    "InjectedFault", "ScheduledFault", "TransientShuffleError", "WorkerCrash",
    "CheckpointError", "ExecutionCheckpoint", "checkpoint", "restore_into",
    "resume", "run_to_frontier",
    "DynamicsConfig", "DynamicsEventReport", "DynamicsResult",
    "ReplanReport", "execute_with_dynamics",
    "CacheEntry", "IntermediateStore", "PreloadReport", "harvest_state",
    "preload_state", "stage_cache_keys",
    "CATEGORIES", "INTERMEDIATE_CACHE", "RECOVERY", "REPLAN", "STRAGGLER",
    "WORK", "EngineFailure", "StageRecord", "TrafficLedger",
    "ChurnConfig", "HeartbeatConfig", "HeartbeatDetector",
    "MembershipEvent", "MembershipEventKind", "MembershipView",
    "WorkerTimeline", "crash_at_frontier",
    "DEFAULT_RECOVERY", "FallbackRecord", "FaultRetriesExhausted",
    "LineageCheckpoint", "RecoveryPolicy", "RecoveryStats",
    "RobustExecutionResult", "RobustSimulationResult", "SpeculationPolicy",
    "execute_robust", "plan_context", "simulate_robust",
    "Relation", "RelationalEngine", "payload_bytes",
    "AdaptiveResult", "execute_adaptive",
    "SCHEDULERS", "ExecutionState", "ProcessPoolScheduler", "Scheduler",
    "SequentialScheduler", "ThreadPoolScheduler", "resolve_scheduler",
    "BoundKernel", "OpStage", "StageGraph", "StageNode", "TransformStage",
    "lower",
    "StoredMatrix", "assemble", "convert", "infer_format", "split",
    "store_as",
    "ScheduledStage", "Timeline", "schedule", "timeline_of",
]
