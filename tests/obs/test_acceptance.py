"""Acceptance: the paper-scale fig05 plan exports a loadable Chrome trace.

The fig05 experiment optimizes the hidden-80K FFNN full step (the paper's
57-vertex Experiment 1 graph) — far too large to execute on real data, but
planning and simulation run fine.  Tracing the whole pipeline and
exporting must yield a Chrome-loadable JSON document with properly nested
spans covering optimization, lowering, and the simulated stage timeline.
"""

import json
from collections import Counter

import pytest

from repro.cluster import simsql_cluster
from repro.core.optimizer import optimize
from repro.core.registry import OptimizerContext
from repro.engine.executor import simulate
from repro.engine.trace import stage_spans
from repro.obs.export import validate_spans, write_chrome_trace
from repro.obs.tracer import Tracer
from repro.workloads.ffnn import FFNNConfig, ffnn_full_step

FFNN_BEAM = 1500  # fig05's beam width


@pytest.fixture(scope="module")
def traced_fig05(tmp_path_factory):
    graph = ffnn_full_step(FFNNConfig(hidden=80_000))
    ctx = OptimizerContext(cluster=simsql_cluster(10))
    tracer = Tracer()
    plan = optimize(graph, ctx, max_states=FFNN_BEAM, tracer=tracer)
    sim = simulate(plan, ctx, tracer=tracer)
    assert sim.ok
    for span in stage_spans(plan.lowered(ctx)):
        tracer.add_span(span)
    path = str(tmp_path_factory.mktemp("trace") / "fig05.json")
    write_chrome_trace(tracer, path)
    return graph, plan, tracer, path


def test_fig05_chrome_trace_loads_as_valid_json(traced_fig05):
    graph, _plan, tracer, path = traced_fig05
    assert len(graph) >= 50  # the paper's 57-vertex experiment 1 graph
    with open(path, encoding="utf-8") as fh:
        doc = json.load(fh)
    events = doc["traceEvents"]
    assert len(events) == len(tracer.spans())
    assert all(e["ph"] == "X" for e in events)


def test_fig05_spans_nest(traced_fig05):
    _graph, plan, tracer, _path = traced_fig05
    spans = tracer.spans()
    validate_spans(spans)
    kinds = Counter(s.kind for s in spans)
    assert kinds["optimize"] == 1
    assert kinds["search"] >= 1
    assert kinds["search-phase"] >= 2  # sweep + reconstruct
    assert kinds["simulate"] == 1
    assert kinds["timeline"] == 1
    # The virtual timeline carries one span per lowered stage.
    ctx = OptimizerContext(cluster=simsql_cluster(10))
    assert kinds["stage"] == len(plan.lowered(ctx))
    # Nesting: search lives inside optimize, sweep inside search.
    by_sid = {s.sid: s for s in spans}
    search = next(s for s in spans if s.kind == "search")
    assert by_sid[search.parent].kind == "optimize"
    sweep = next(s for s in spans if s.name == "sweep")
    assert by_sid[sweep.parent].kind == "search"
