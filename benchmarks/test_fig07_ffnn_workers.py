"""Fig 7 / Experiment 3: FFNN hidden 160K across cluster sizes."""

import math

import pytest

from conftest import parse_cell
from repro.cluster import simsql_cluster
from repro.core import OptimizerContext, optimize
from repro.experiments.figures import FFNN_BEAM, fig07
from repro.workloads.ffnn import FFNNConfig, ffnn_backprop_to_w2


@pytest.fixture(scope="module")
def table():
    return fig07()


def test_fig07_regenerate(benchmark, table, print_table):
    print_table(table)
    graph = ffnn_backprop_to_w2(FFNNConfig(hidden=160_000))

    def optimize_once():
        return optimize(graph, OptimizerContext(cluster=simsql_cluster(5)),
                        max_states=FFNN_BEAM)

    benchmark.pedantic(optimize_once, rounds=2, iterations=1)

    # Paper's failure pattern, cell for cell: on 5 workers only the
    # auto-generated plan survives; all-tile needs 20+ workers.
    assert math.isfinite(parse_cell(table.cell("5", "Auto-gen")))
    assert math.isinf(parse_cell(table.cell("5", "Hand-written")))
    assert math.isinf(parse_cell(table.cell("5", "All-tile")))
    assert math.isfinite(parse_cell(table.cell("10", "Hand-written")))
    assert math.isinf(parse_cell(table.cell("10", "All-tile")))
    assert math.isfinite(parse_cell(table.cell("20", "All-tile")))

    # Auto-generated runtimes improve with more workers.
    autos = [parse_cell(table.cell(w, "Auto-gen"))
             for w in ("5", "10", "20", "25")]
    assert autos == sorted(autos, reverse=True)

    # Auto beats the baselines wherever they run at all.
    for workers in ("10", "20", "25"):
        assert parse_cell(table.cell(workers, "Auto-gen")) < \
            parse_cell(table.cell(workers, "Hand-written"))
