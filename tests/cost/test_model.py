"""Tests for cost features and the regression cost model."""


import pytest
from hypothesis import given, strategies as st

from repro.cluster import ClusterConfig
from repro.cost.features import CostFeatures, ZERO_FEATURES
from repro.cost.model import CostModel, CostWeights, INFEASIBLE


def _cluster(**kw):
    return ClusterConfig(**kw)


class TestFeatures:
    def test_addition_sums_additive_fields(self):
        a = CostFeatures(flops=10, network_bytes=5, tuples=2)
        b = CostFeatures(flops=1, intermediate_bytes=7, tuples=3)
        c = a + b
        assert c.flops == 11
        assert c.network_bytes == 5
        assert c.intermediate_bytes == 7
        assert c.tuples == 5

    def test_addition_maxes_memory_fields(self):
        a = CostFeatures(max_worker_bytes=100, spill_bytes=10)
        b = CostFeatures(max_worker_bytes=50, spill_bytes=200)
        c = a + b
        assert c.max_worker_bytes == 100
        assert c.spill_bytes == 200

    def test_scaled(self):
        f = CostFeatures(flops=10, tuples=4, max_worker_bytes=99).scaled(2.0)
        assert f.flops == 20
        assert f.tuples == 8
        assert f.max_worker_bytes == 99  # memory is a peak, not a volume

    def test_vector_order(self):
        f = CostFeatures(flops=1, network_bytes=2, intermediate_bytes=3,
                         tuples=4)
        assert f.as_vector() == (1, 2, 3, 4)


class TestModel:
    def test_zero_features_cost_nothing(self):
        model = CostModel(_cluster())
        assert model.seconds(ZERO_FEATURES) == 0.0

    def test_nonempty_stage_pays_latency(self):
        cluster = _cluster(stage_latency_seconds=2.5)
        model = CostModel(cluster)
        assert model.seconds(CostFeatures(tuples=1)) >= 2.5

    def test_flops_scale_with_cluster(self):
        f = CostFeatures(flops=1e12)
        small = CostModel(_cluster(num_workers=2)).seconds(f)
        big = CostModel(_cluster(num_workers=20)).seconds(f)
        assert big < small

    def test_ram_overflow_infeasible(self):
        model = CostModel(_cluster(ram_bytes=100))
        assert model.seconds(CostFeatures(max_worker_bytes=200)) == INFEASIBLE

    def test_disk_overflow_infeasible(self):
        model = CostModel(_cluster(disk_bytes=100))
        assert model.seconds(CostFeatures(spill_bytes=200)) == INFEASIBLE

    def test_weights_scale_components(self):
        f = CostFeatures(network_bytes=1e9)
        base = CostModel(_cluster(), CostWeights()).seconds(f)
        doubled = CostModel(
            _cluster(), CostWeights(network=2.0)).seconds(f)
        # Only the network share doubles; latency is unchanged.
        assert base < doubled < 2 * base + 1e-9

    @given(st.floats(0, 1e15), st.floats(0, 1e13), st.floats(0, 1e13),
           st.floats(0, 1e8))
    def test_cost_monotone_in_every_feature(self, flops, net, inter, tuples):
        model = CostModel(_cluster())
        base = model.seconds(CostFeatures(flops, net, inter, tuples))
        assert base >= 0
        more = model.seconds(CostFeatures(flops * 2 + 1, net, inter, tuples))
        assert more >= base

    def test_invalid_cluster_rejected(self):
        with pytest.raises(ValueError):
            _cluster(num_workers=0)
        with pytest.raises(ValueError):
            _cluster(cores_per_worker=0)


class TestProfiles:
    def test_simsql_slower_than_pliny(self):
        from repro.cluster import pliny_cluster, simsql_cluster
        f = CostFeatures(flops=1e13, network_bytes=1e9, tuples=1e5)
        simsql = CostModel(simsql_cluster(10)).seconds(f)
        pliny = CostModel(pliny_cluster(10)).seconds(f)
        assert pliny < simsql

    def test_with_workers(self):
        from repro.cluster import simsql_cluster
        c = simsql_cluster(10).with_workers(20)
        assert c.num_workers == 20
        assert c.flops_per_core == simsql_cluster(10).flops_per_core
