"""Tests for plan serialization and EXPLAIN."""

import json

import numpy as np
import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import ADD, MATMUL, RELU, SCALAR_MUL
from repro.core.explain import explain, explain_stages
from repro.core.formats import row_strips, single, tiles
from repro.core.serialize import (
    SerializationError,
    format_from_dict,
    format_to_dict,
    graph_from_dict,
    graph_to_dict,
    plan_from_json,
    plan_to_json,
)
from repro.engine import execute_plan


def _plan_and_ctx():
    g = ComputeGraph()
    a = g.add_source("A", matrix(300, 400), row_strips(100))
    b = g.add_source("B", matrix(400, 300), single())
    ab = g.add_op("AB", MATMUL, (a, b))
    s = g.add_op("S", SCALAR_MUL, (ab,), param=2.0)
    g.add_op("R", RELU, (s,))
    ctx = OptimizerContext()
    return optimize(g, ctx), ctx


class TestFormatRoundTrip:
    @pytest.mark.parametrize("fmt", [single(), tiles(100), row_strips(50)])
    def test_round_trip(self, fmt):
        assert format_from_dict(format_to_dict(fmt)) == fmt

    def test_bad_layout_rejected(self):
        with pytest.raises(SerializationError):
            format_from_dict({"layout": "holographic"})


class TestGraphRoundTrip:
    def test_structure_preserved(self):
        plan, _ = _plan_and_ctx()
        rebuilt = graph_from_dict(graph_to_dict(plan.graph))
        assert len(rebuilt) == len(plan.graph)
        assert [v.name for v in rebuilt.vertices] == \
            [v.name for v in plan.graph.vertices]
        assert rebuilt.vertex(3).param == 2.0

    def test_outputs_preserved(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        r = g.add_op("R", RELU, (a,))
        g.add_op("S", ADD, (r, r))
        g.mark_output(r)
        rebuilt = graph_from_dict(graph_to_dict(g))
        assert [v.name for v in rebuilt.outputs] == ["R"]


class TestPlanRoundTrip:
    def test_cost_identical_after_round_trip(self):
        plan, ctx = _plan_and_ctx()
        text = plan_to_json(plan)
        rebuilt = plan_from_json(text, ctx)
        assert rebuilt.total_seconds == pytest.approx(plan.total_seconds)
        assert {i.name for i in rebuilt.annotation.impls.values()} == \
            {i.name for i in plan.annotation.impls.values()}

    def test_json_is_valid_and_self_contained(self):
        plan, _ = _plan_and_ctx()
        payload = json.loads(plan_to_json(plan, indent=2))
        assert "graph" in payload and "impls" in payload

    def test_rebuilt_plan_executes(self):
        plan, ctx = _plan_and_ctx()
        rebuilt = plan_from_json(plan_to_json(plan), ctx)
        rng = np.random.default_rng(0)
        a = rng.standard_normal((300, 400))
        b = rng.standard_normal((400, 300))
        result = execute_plan(rebuilt, {"A": a, "B": b}, ctx)
        assert np.allclose(result.output(), np.maximum(2 * (a @ b), 0))

    def test_profile_round_trips(self):
        plan, ctx = _plan_and_ctx()
        assert plan.profile is not None
        rebuilt = plan_from_json(plan_to_json(plan), ctx)
        assert rebuilt.profile == plan.profile

    def test_cache_hit_flag_round_trips(self):
        import dataclasses

        plan, ctx = _plan_and_ctx()
        marked = dataclasses.replace(
            plan, profile=dataclasses.replace(plan.profile, cache_hit=True))
        rebuilt = plan_from_json(plan_to_json(marked), ctx)
        assert rebuilt.profile.cache_hit
        assert "served from plan cache" in rebuilt.profile.describe()

    def test_pipeline_report_round_trips(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(300, 400), row_strips(100))
        b = g.add_source("B", matrix(400, 300), single())
        ab = g.add_op("AB", MATMUL, (a, b))
        g.add_op("R", RELU, (ab,))
        ctx = OptimizerContext()
        plan = optimize(g, ctx, rewrites="all")
        assert plan.pipeline is not None
        rebuilt = plan_from_json(plan_to_json(plan), ctx)
        assert rebuilt.pipeline == plan.pipeline
        assert rebuilt.profile == plan.profile

    def test_unknown_impl_rejected(self):
        plan, ctx = _plan_and_ctx()
        payload = json.loads(plan_to_json(plan))
        first = next(iter(payload["impls"]))
        payload["impls"][first] = "mm_quantum"
        with pytest.raises(SerializationError):
            plan_from_json(json.dumps(payload), ctx)


class TestExplain:
    def test_stage_rows_cover_all_ops(self):
        plan, ctx = _plan_and_ctx()
        rows = explain_stages(plan, ctx)
        op_rows = [r for r in rows if r.kind == "op"]
        assert len(op_rows) == len(plan.graph.inner_vertices)

    def test_stage_seconds_sum_to_plan_total(self):
        plan, ctx = _plan_and_ctx()
        rows = explain_stages(plan, ctx)
        assert sum(r.seconds for r in rows) == pytest.approx(
            plan.total_seconds, rel=1e-9)

    def test_report_renders(self):
        plan, ctx = _plan_and_ctx()
        report = explain(plan, ctx)
        assert "EXPLAIN" in report
        assert "dominant stages" in report
        assert "AB" in report
