"""Golden-plan regression tests for the canonical paper workloads.

Each case optimizes a fig05/fig09/fig10 workload under its experiment
configuration and compares the *serialized plan* (implementations, per-edge
transformations, formats — via :mod:`repro.core.serialize`) against a
checked-in golden JSON under ``tests/core/golden/``.  Any optimizer change
that silently alters a chosen plan shows up as a readable per-vertex diff.

To regenerate after an intentional plan change::

    PYTHONPATH=src python tests/core/test_golden_plans.py --regen

then inspect the git diff of ``tests/core/golden/*.json`` before
committing it.
"""

import json
import math
from pathlib import Path

import pytest

from repro.cluster import simsql_cluster
from repro.core.optimizer import optimize
from repro.core.serialize import plan_from_dict, plan_to_dict
from repro.experiments.figures import FFNN_BEAM
from repro.experiments.harness import fresh_context
from repro.workloads import (
    FFNNConfig,
    ffnn_full_step,
    mm_chain_graph,
    two_level_inverse_graph,
)

GOLDEN_DIR = Path(__file__).parent / "golden"

#: name -> (graph builder, beam width), matching the fig experiments.
CASES = {
    "fig05_ffnn_full_step": (
        lambda: ffnn_full_step(FFNNConfig(hidden=80_000)), FFNN_BEAM),
    "fig09_two_level_inverse": (two_level_inverse_graph, FFNN_BEAM),
    "fig10_mm_chain_set1": (lambda: mm_chain_graph(1), FFNN_BEAM),
    "fig10_mm_chain_set2": (lambda: mm_chain_graph(2), FFNN_BEAM),
    "fig10_mm_chain_set3": (lambda: mm_chain_graph(3), FFNN_BEAM),
}


def _optimize_case(name: str) -> dict:
    """Optimize one case and serialize it, stripping run-dependent fields."""
    build, beam = CASES[name]
    graph = build()
    ctx = fresh_context(simsql_cluster(10))
    plan = optimize(graph, ctx, max_states=beam)
    payload = plan_to_dict(plan)
    payload["optimize_seconds"] = 0.0  # wall time is not part of the plan
    payload["total_seconds"] = plan.total_seconds
    # The search-effort profile carries wall-clock phase times; goldens pin
    # plan *choices* only.
    payload.pop("profile", None)
    # The lang layer names vertices with a process-global expression
    # counter ("matmul_29"), so names vary with what was built earlier in
    # the process.  Canonicalize inner-vertex names to op + vertex id,
    # which depend only on the graph's structure.
    for entry in payload["graph"]["vertices"]:
        if "op" in entry:
            entry["name"] = f"{entry['op']}_{entry['vid']}"
    return payload


def _plan_diff(golden: dict, fresh: dict) -> str:
    """Readable per-vertex / per-edge diff between two plan payloads."""
    lines = []
    g_names = {v["vid"]: v["name"] for v in golden["graph"]["vertices"]}
    for vid in sorted(set(golden["impls"]) | set(fresh["impls"]), key=int):
        old = golden["impls"].get(vid)
        new = fresh["impls"].get(vid)
        if old != new:
            lines.append(f"  vertex {vid} ({g_names.get(int(vid), '?')}): "
                         f"impl {old} -> {new}")

    def by_edge(payload):
        return {(t["src"], t["dst"], t["arg_pos"]):
                (t["transform"], t["to_format"]) for t in
                payload["transforms"]}
    g_edges, f_edges = by_edge(golden), by_edge(fresh)
    for edge in sorted(set(g_edges) | set(f_edges)):
        if g_edges.get(edge) != f_edges.get(edge):
            src, dst, pos = edge
            lines.append(
                f"  edge {g_names.get(src, src)}->{g_names.get(dst, dst)}"
                f"[arg {pos}]: {g_edges.get(edge)} -> {f_edges.get(edge)}")
    if golden.get("total_seconds") != fresh.get("total_seconds"):
        lines.append(f"  total cost: {golden.get('total_seconds')} -> "
                     f"{fresh.get('total_seconds')}")
    return "\n".join(lines) or "  (payloads differ outside plan choices)"


@pytest.mark.parametrize("name", sorted(CASES))
def test_plan_matches_golden(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), \
        f"missing golden file {path}; regenerate with " \
        f"`PYTHONPATH=src python tests/core/test_golden_plans.py --regen`"
    golden = json.loads(path.read_text())
    fresh = _optimize_case(name)
    if golden != fresh:
        pytest.fail(
            f"plan for {name} changed (if intentional, regenerate goldens "
            f"with `PYTHONPATH=src python tests/core/test_golden_plans.py "
            f"--regen` and review the JSON diff):\n"
            + _plan_diff(golden, fresh))


def test_golden_payloads_deserialize():
    """Golden payloads round-trip through the serializer and re-cost."""
    for name in sorted(CASES):
        payload = json.loads((GOLDEN_DIR / f"{name}.json").read_text())
        ctx = fresh_context(simsql_cluster(10))
        plan = plan_from_dict(payload, ctx)
        assert math.isclose(plan.total_seconds, payload["total_seconds"],
                            rel_tol=1e-9), name


def main() -> int:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name in sorted(CASES):
        payload = _optimize_case(name)
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(payload, indent=1, sort_keys=True) + "\n")
        print(f"wrote {path} (cost {payload['total_seconds']:.3f}s)")
    return 0


if __name__ == "__main__":
    import sys

    if "--regen" not in sys.argv:
        print(__doc__)
        sys.exit(2)
    sys.exit(main())
