"""Scheduler equivalence: the thread-pool and process-pool schedulers must
be observably identical to the sequential one — outputs, ledgers, and
recovery stats — because sub-ledgers merge in stage-id order regardless of
completion order (and, for processes, fault draws are pure functions of
``(seed, stage name, occurrence)``, never of process-local state)."""

import pickle
import subprocess
import sys

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import (
    ADD,
    ELEM_MUL,
    MATMUL,
    RELU,
    SCALAR_MUL,
    SUB,
    TRANSPOSE,
    FusedStep,
    fused_atom,
)
from repro.core.formats import row_strips, single, sparse_single, tiles
from repro.engine import execute_plan
from repro.engine.faults import (
    FaultConfig,
    FaultPlan,
    TransientShuffleError,
    WorkerCrash,
    as_injector,
)
from repro.engine.ledger import EngineFailure
from repro.engine.recovery import (
    FaultRetriesExhausted,
    RecoveryPolicy,
    SpeculationPolicy,
)
from repro.engine.scheduler import (
    SCHEDULERS,
    ProcessPoolScheduler,
    SequentialScheduler,
    ThreadPoolScheduler,
    resolve_scheduler,
)
from repro.engine.stages import lower

OPS = (MATMUL, ADD, SUB, ELEM_MUL, RELU, TRANSPOSE, SCALAR_MUL)
RNG = np.random.default_rng(23)

#: Both concurrent schedulers, equivalence-tested against sequential.
POOLS = (ThreadPoolScheduler, ProcessPoolScheduler)


def _diamond():
    g = ComputeGraph()
    x = g.add_source("X", matrix(48, 48), tiles(16))
    wl = g.add_source("WL", matrix(48, 48), tiles(16))
    wr = g.add_source("WR", matrix(48, 48), tiles(16))
    left = g.add_op("L", MATMUL, (x, wl))
    right = g.add_op("R", MATMUL, (x, wr))
    g.add_op("OUT", ADD, (left, right))
    inputs = {name: RNG.standard_normal((48, 48))
              for name in ("X", "WL", "WR")}
    return g, inputs


def _both(plan, inputs, ctx, pool_cls=ThreadPoolScheduler, **kwargs):
    seq = execute_plan(plan, inputs, ctx,
                       scheduler=SequentialScheduler(), **kwargs)
    pool = execute_plan(plan, inputs, ctx,
                        scheduler=pool_cls(), **kwargs)
    return seq, pool


def _assert_equivalent(seq, pool):
    assert seq.ok == pool.ok
    assert set(seq.outputs) == set(pool.outputs)
    for name, value in seq.outputs.items():
        assert np.array_equal(pool.outputs[name], value), name
    records = [(s.name, s.seconds, s.category) for s in seq.ledger.stages]
    assert records == \
        [(s.name, s.seconds, s.category) for s in pool.ledger.stages]
    assert seq.ledger.total_seconds == pool.ledger.total_seconds
    assert seq.ledger.total_seconds == \
        pytest.approx(pool.ledger.total_seconds, abs=1e-9)


class TestCleanEquivalence:
    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_diamond_is_bit_identical(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls)
        assert seq.ok
        _assert_equivalent(seq, pool)
        assert seq.executed_stages == pool.executed_stages

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_pool_respects_dependencies(self, pool_cls):
        """Many workers, deep graph: values must still be correct."""
        g = ComputeGraph()
        prev = g.add_source("A", matrix(32, 32), tiles(16))
        a0 = prev
        for i in range(6):
            prev = g.add_op(f"v{i}", RELU if i % 2 else ADD,
                            (prev, a0)[:1 + (i % 2 == 0)])
        inputs = {"A": RNG.standard_normal((32, 32))}
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls)
        assert seq.ok
        _assert_equivalent(seq, pool)

    @settings(max_examples=15, deadline=None,
              suppress_health_check=[HealthCheck.too_slow,
                                     HealthCheck.data_too_large])
    @given(st.data())
    def test_random_plans_are_equivalent(self, data):
        seed = data.draw(st.integers(0, 10_000))
        rng = np.random.default_rng(seed)
        n = data.draw(st.sampled_from([24, 40]))
        g = ComputeGraph()
        inputs = {}
        pool_vids = []
        for i in range(data.draw(st.integers(2, 3))):
            fmt = data.draw(st.sampled_from([single(), tiles(16),
                                             row_strips(8)]))
            vid = g.add_source(f"S{i}", matrix(n, n), fmt)
            inputs[f"S{i}"] = rng.standard_normal((n, n))
            pool_vids.append(vid)
        for i in range(data.draw(st.integers(1, 5))):
            op = data.draw(st.sampled_from(OPS))
            picks = tuple(
                pool_vids[data.draw(st.integers(0, len(pool_vids) - 1))]
                for _ in range(op.arity))
            param = data.draw(st.floats(-2, 2)) if op is SCALAR_MUL else None
            pool_vids.append(g.add_op(f"v{i}", op, picks, param=param))
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        seq, pool = _both(plan, inputs, ctx)
        assert seq.ok
        _assert_equivalent(seq, pool)


class TestFaultEquivalence:
    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_scheduled_crash_recovers_identically(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls,
                          faults=FaultPlan.crash("L"))
        assert seq.ok
        assert seq.recovery.worker_crashes == 1
        _assert_equivalent(seq, pool)
        assert seq.recovery.retries == pool.recovery.retries
        assert seq.recovery.backoff_seconds == pool.recovery.backoff_seconds
        assert seq.recovery.recovered_faults == pool.recovery.recovered_faults

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_probabilistic_faults_recover_identically(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        cfg = FaultConfig(seed=6, crash_probability=0.2,
                          shuffle_error_probability=0.1,
                          straggler_probability=0.2)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls, faults=cfg)
        assert seq.ok
        assert seq.recovery.recovered_faults > 0
        _assert_equivalent(seq, pool)
        assert seq.recovery.retries == pool.recovery.retries
        assert seq.recovery.worker_crashes == pool.recovery.worker_crashes
        assert seq.recovery.transient_errors == pool.recovery.transient_errors

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_retries_exhausted_fails_identically(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        persistent = FaultPlan(tuple(
            FaultPlan.crash("L", occurrence=i).faults[0] for i in range(3)))
        policy = RecoveryPolicy(max_retries=2, backoff_base_seconds=0.1)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls,
                          faults=persistent, recovery=policy)
        assert not seq.ok and not pool.ok
        assert seq.failure == pool.failure
        assert seq.recovery.worker_crashes == pool.recovery.worker_crashes

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_memory_failure_fails_identically(self, pool_cls):
        """Declared sparsity lies and the spill overflows worker disk: both
        schedulers must surface the same engine failure."""
        rng = np.random.default_rng(0)
        n = 256
        cluster = ClusterConfig(num_workers=4, disk_bytes=1.5e6)
        ctx = OptimizerContext(cluster=cluster)
        g = ComputeGraph()
        a = g.add_source("A", matrix(n, n, sparsity=0.005), sparse_single())
        b = g.add_source("B", matrix(n, n), tiles(64))
        g.add_op("C", MATMUL, (a, b))
        inputs = {"A": rng.standard_normal((n, n)),
                  "B": rng.standard_normal((n, n))}
        plan = optimize(g, ctx, max_states=200)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls)
        assert not seq.ok and not pool.ok
        assert seq.failure == pool.failure

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_speculation_decides_identically(self, pool_cls):
        """The speculation win/lose decision depends only on the stage's
        own sub-ledger, so it survives the trip through a worker process."""
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        straggle = FaultPlan.straggler("L:", slowdown=12.0)
        policy = RecoveryPolicy(speculative_backups=False)
        seq, pool = _both(plan, inputs, ctx, pool_cls=pool_cls,
                          faults=straggle, recovery=policy,
                          speculation=SpeculationPolicy(min_multiplier=5.0))
        assert seq.ok
        assert seq.ledger.straggler_seconds > 0.0
        _assert_equivalent(seq, pool)
        assert seq.critical_path_seconds == pool.critical_path_seconds


class TestMetricsEquivalence:
    """The metrics registry must be BIT-identical between schedulers: every
    float total and the canonical JSON rendering, with and without faults
    (see docs/observability.md)."""

    def _both_metrics(self, plan, inputs, ctx,
                      pool_cls=ThreadPoolScheduler, **kwargs):
        from repro.obs.metrics import MetricsRegistry

        seq_m, pool_m = MetricsRegistry(), MetricsRegistry()
        seq = execute_plan(plan, inputs, ctx,
                           scheduler=SequentialScheduler(),
                           metrics=seq_m, **kwargs)
        pool = execute_plan(plan, inputs, ctx,
                            scheduler=pool_cls(),
                            metrics=pool_m, **kwargs)
        return (seq, seq_m), (pool, pool_m)

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_clean_run_metrics_bit_identical(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        (seq, seq_m), (pool, pool_m) = self._both_metrics(
            plan, inputs, ctx, pool_cls=pool_cls)
        assert seq.ok and pool.ok
        assert seq_m.to_json() == pool_m.to_json()
        assert seq_m.counters["execute.stages"] == len(seq.executed_stages)
        assert seq_m.counters["execute.kernel_seconds"] == \
            pool_m.counters["execute.kernel_seconds"]  # exact, not approx

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_faulty_run_metrics_bit_identical(self, pool_cls):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        cfg = FaultConfig(seed=6, crash_probability=0.2,
                          shuffle_error_probability=0.1,
                          straggler_probability=0.2)
        (seq, seq_m), (pool, pool_m) = self._both_metrics(
            plan, inputs, ctx, pool_cls=pool_cls, faults=cfg)
        assert seq.ok and pool.ok
        assert seq_m.to_json() == pool_m.to_json()
        assert seq_m.counters["execute.retries"] >= 1
        assert "execute.recovery_seconds" in seq_m.counters

    @pytest.mark.parametrize("pool_cls", POOLS)
    def test_traced_runs_have_identical_span_ids(self, pool_cls):
        """Span ids derive from the tree shape, not completion order: both
        schedulers produce the same id set (wall-clock times differ)."""
        from repro.obs.tracer import Tracer

        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        seq_t, pool_t = Tracer(), Tracer()
        execute_plan(plan, inputs, ctx, scheduler=SequentialScheduler(),
                     tracer=seq_t)
        execute_plan(plan, inputs, ctx, scheduler=pool_cls(),
                     tracer=pool_t)
        seq_ids = {s.sid for s in seq_t.spans()}
        pool_ids = {s.sid for s in pool_t.spans()}
        assert seq_ids == pool_ids
        assert any(s.kind == "stage" for s in seq_t.spans())


class TestSchedulerKnob:
    """``resolve_scheduler`` mirrors the ``rewrites=`` / ``frontier=`` knob
    contract: strings resolve through an alias table, instances pass
    through, anything else raises a clear ``ValueError``."""

    def test_default_is_sequential(self):
        assert isinstance(resolve_scheduler(None), SequentialScheduler)

    @pytest.mark.parametrize("alias,cls", [
        ("sequential", SequentialScheduler),
        ("seq", SequentialScheduler),
        ("thread-pool", ThreadPoolScheduler),
        ("threads", ThreadPoolScheduler),
        ("thread", ThreadPoolScheduler),
        ("process-pool", ProcessPoolScheduler),
        ("processes", ProcessPoolScheduler),
        ("process", ProcessPoolScheduler),
    ])
    def test_aliases_resolve(self, alias, cls):
        assert isinstance(resolve_scheduler(alias), cls)

    def test_instances_pass_through(self):
        sched = ThreadPoolScheduler(max_workers=2)
        assert resolve_scheduler(sched) is sched

    def test_canonical_names_cover_all_schedulers(self):
        for name in SCHEDULERS:
            assert resolve_scheduler(name).name == name

    def test_unknown_string_raises(self):
        with pytest.raises(ValueError, match="unknown scheduler 'bogus'"):
            resolve_scheduler("bogus")

    def test_non_scheduler_object_raises(self):
        with pytest.raises(ValueError, match="scheduler"):
            resolve_scheduler(42)

    def test_execute_plan_rejects_unknown_scheduler(self):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        with pytest.raises(ValueError, match="unknown scheduler"):
            execute_plan(plan, inputs, ctx, scheduler="quantum")


class TestProcessPoolPickling:
    """Everything a :class:`_StageJob` ships to a worker process must
    survive pickling — including fused atoms (which close over local type
    functions) and exceptions with non-default constructors."""

    def test_fused_atom_round_trips_to_same_instance(self):
        atom = fused_atom((FusedStep("add"), FusedStep("relu")))
        clone = pickle.loads(pickle.dumps(atom))
        assert clone is atom  # interned by name

    def test_catalog_atom_round_trips_to_same_instance(self):
        assert pickle.loads(pickle.dumps(MATMUL)) is MATMUL

    def test_lowered_stage_graph_round_trips(self):
        graph, inputs = _diamond()
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=200)
        sgraph = lower(plan, ctx)
        clone = pickle.loads(pickle.dumps(sgraph))
        assert [s.name for s in clone.stages] == \
            [s.name for s in sgraph.stages]
        assert [s.seconds for s in clone.stages] == \
            [s.seconds for s in sgraph.stages]

    def test_fault_injector_round_trips(self):
        injector = as_injector(FaultConfig(seed=6, crash_probability=0.5), 4)
        with pytest.raises(WorkerCrash):  # seed 6 crashes this stage first
            for _ in range(20):
                injector.before_stage("L:mm_broadcast")
        clone = pickle.loads(pickle.dumps(injector))
        assert clone.cursor() == injector.cursor()
        # The clone keeps drawing the same deterministic fault sequence.
        for _ in range(10):
            a = b = None
            try:
                injector.before_stage("R:mm_broadcast")
            except Exception as exc:  # noqa: BLE001 - comparing draw types
                a = exc
            try:
                clone.before_stage("R:mm_broadcast")
            except Exception as exc:  # noqa: BLE001
                b = exc
            assert type(a) is type(b)

    @pytest.mark.parametrize("exc", [
        EngineFailure("L:mm", "worker RAM exceeded"),
        WorkerCrash("L:mm", 3),
        TransientShuffleError("L:mm"),
        FaultRetriesExhausted("L:mm", 4, WorkerCrash("L:mm", 1)),
    ])
    def test_engine_exceptions_round_trip(self, exc):
        clone = pickle.loads(pickle.dumps(exc))
        assert type(clone) is type(exc)
        assert str(clone) == str(exc)


HASHSEED_PROBE = """
import numpy as np
from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import ADD, MATMUL
from repro.core.formats import tiles
from repro.engine import execute_plan
from repro.engine.faults import FaultConfig

g = ComputeGraph()
x = g.add_source("X", matrix(48, 48), tiles(16))
wl = g.add_source("WL", matrix(48, 48), tiles(16))
wr = g.add_source("WR", matrix(48, 48), tiles(16))
left = g.add_op("L", MATMUL, (x, wl))
right = g.add_op("R", MATMUL, (x, wr))
g.add_op("OUT", ADD, (left, right))
rng = np.random.default_rng(23)
inputs = {n: rng.standard_normal((48, 48)) for n in ("X", "WL", "WR")}
ctx = OptimizerContext()
plan = optimize(g, ctx, max_states=200)
res = execute_plan(plan, inputs, ctx, scheduler="process-pool",
                   faults=FaultConfig(seed=6, crash_probability=0.2,
                                      shuffle_error_probability=0.1,
                                      straggler_probability=0.2))
assert res.ok, res.failure
for rec in res.ledger.stages:
    print(rec.name, repr(rec.seconds), rec.category)
print("total", repr(res.ledger.total_seconds))
print("retries", res.recovery.retries)
"""


def test_process_pool_is_hashseed_independent(tmp_path):
    """Fault draws hash stage names with SHA-512, not ``hash()``: a faulty
    process-pool run prints the same ledger under any PYTHONHASHSEED."""
    import os

    import repro

    src_dir = os.path.dirname(os.path.dirname(repro.__file__))
    script = tmp_path / "probe.py"
    script.write_text(HASHSEED_PROBE)
    outputs = []
    for seed in ("0", "42"):
        env = dict(os.environ, PYTHONHASHSEED=seed)
        env["PYTHONPATH"] = os.pathsep.join(
            [src_dir] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else []))
        proc = subprocess.run([sys.executable, str(script)], env=env,
                              capture_output=True, text=True, timeout=300)
        assert proc.returncode == 0, proc.stderr
        outputs.append(proc.stdout)
    assert "retries" in outputs[0]
    assert outputs[0] == outputs[1]
