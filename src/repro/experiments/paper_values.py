"""The paper's published numbers, for side-by-side reporting.

Each constant mirrors one table/figure of the paper (times as printed,
H:MM:SS / M:SS / MM:SS strings; "Fail" marks crashed runs).  These are used
by the experiment tables and EXPERIMENTS.md to show paper-vs-measured; the
reproduction is judged on *shape* (orderings, failure patterns, rough
factors), not absolute seconds — see DESIGN.md.
"""

from __future__ import annotations

#: Fig 1 (Section 2.1 motivating example), per-phase times.
FIG01 = {
    "impl1": {"mult1": "0:15", "transform": "2:07", "mult2": "16:27",
              "total": "19:11"},
    "impl2": {"mult1": "0:16", "transform": "0:08", "mult2": "0:14",
              "total": "0:56"},
}

#: Fig 5: FFNN fwd + backprop + fwd, hidden 80K, 10 workers.
FIG05 = {"auto": "0:59:02", "auto_opt": "1:03", "hand": "1:25:34",
         "tile": "1:54:18"}

#: Fig 6: FFNN fwd + backprop-to-W2 by hidden size, 10 workers.
FIG06 = {
    10_000: {"auto": "0:06:15", "hand": "0:10:06", "tile": "0:09:01"},
    40_000: {"auto": "0:12:18", "hand": "0:17:58", "tile": "0:18:43"},
    80_000: {"auto": "0:23:46", "hand": "0:42:47", "tile": "0:50:23"},
    160_000: {"auto": "0:55:16", "hand": "2:15:01", "tile": "Fail"},
}

#: Fig 7: FFNN hidden 160K by cluster size.
FIG07 = {
    5: {"auto": "1:19:32", "hand": "Fail", "tile": "Fail"},
    10: {"auto": "0:55:16", "hand": "2:15:01", "tile": "Fail"},
    20: {"auto": "0:44:19", "hand": "1:19:27", "tile": "1:45:50"},
    25: {"auto": "0:38:19", "hand": "1:18:59", "tile": "1:31:15"},
}

#: Fig 8: FFNN hidden 80K, auto vs three recruited users
#: (* = first attempt crashed, plan redesigned).
FIG08 = {"auto": "23:46", "user_low": "55:23*", "user_medium": "36:02*",
         "user_high": "23:58"}

#: Fig 9: two-level block-wise matrix inverse, 10 workers.
FIG09 = {"auto": "21:31", "auto_opt": ":21", "hand": "28:19",
         "tile": "34:50"}

#: Fig 10: matrix multiplication chain by input size set (Fig 4).
FIG10 = {
    1: {"auto": "0:08:45", "hand": "0:20:22", "tile": "0:21:38"},
    2: {"auto": "1:05:36", "hand": "2:26:32", "tile": "1:56:15"},
    3: {"auto": "0:34:52", "hand": "1:46:20", "tile": "2:02:54"},
}

#: Fig 11: FFNN on AmazonCat-14K-shaped data, 1K batch, dense only.
#: Keyed (workers, hidden) -> system -> time.
FIG11 = {
    (2, 4000): {"pc": "0:23", "pytorch": "0:26", "systemds": "1:10"},
    (2, 5000): {"pc": "0:28", "pytorch": "0:31", "systemds": "1:24"},
    (2, 7000): {"pc": "0:53", "pytorch": "Fail", "systemds": "1:36"},
    (5, 4000): {"pc": "0:18", "pytorch": "0:39", "systemds": "0:56"},
    (5, 5000): {"pc": "0:20", "pytorch": "0:46", "systemds": "1:01"},
    (5, 7000): {"pc": "0:30", "pytorch": "Fail", "systemds": "0:39"},
    (10, 4000): {"pc": "0:20", "pytorch": "0:40", "systemds": "0:44"},
    (10, 5000): {"pc": "0:22", "pytorch": "0:50", "systemds": "0:52"},
    (10, 7000): {"pc": "0:25", "pytorch": "Fail", "systemds": "0:34"},
}

#: Fig 12: same, 10K batch, with/without sparsity exploitation.
FIG12 = {
    (2, 4000): {"pc_no_sparsity": "1:34", "pc_sparse_input": "0:50",
                "pc_dense_input": "0:54", "pytorch": "2:05",
                "systemds": "1:57"},
    (2, 5000): {"pc_no_sparsity": "2:47", "pc_sparse_input": "0:58",
                "pc_dense_input": "1:02", "pytorch": "Fail",
                "systemds": "2:51"},
    (2, 7000): {"pc_no_sparsity": "4:24", "pc_sparse_input": "1:16",
                "pc_dense_input": "1:19", "pytorch": "Fail",
                "systemds": "7:54"},
    (5, 4000): {"pc_no_sparsity": "1:15", "pc_sparse_input": "0:23",
                "pc_dense_input": "0:27", "pytorch": "1:16",
                "systemds": "1:15"},
    (5, 5000): {"pc_no_sparsity": "1:20", "pc_sparse_input": "0:26",
                "pc_dense_input": "0:32", "pytorch": "1:30",
                "systemds": "1:30"},
    (5, 7000): {"pc_no_sparsity": "1:55", "pc_sparse_input": "0:35",
                "pc_dense_input": "0:38", "pytorch": "Fail",
                "systemds": "2:49"},
    (10, 4000): {"pc_no_sparsity": "0:53", "pc_sparse_input": "0:20",
                 "pc_dense_input": "0:24", "pytorch": "1:06",
                 "systemds": "1:01"},
    (10, 5000): {"pc_no_sparsity": "1:02", "pc_sparse_input": "0:20",
                 "pc_dense_input": "0:24", "pytorch": "1:17",
                 "systemds": "1:15"},
    (10, 7000): {"pc_no_sparsity": "1:16", "pc_sparse_input": "0:23",
                 "pc_dense_input": "0:28", "pytorch": "Fail",
                 "systemds": "1:21"},
}

#: Fig 13: optimization times (MM:SS), DP/frontier vs brute force.
#: Keyed format-subset -> family -> scale -> (dp, brute).
FIG13 = {
    "all": {
        "dag2": {1: ("00:01", "26:54"), 2: ("00:08", "Fail"),
                 3: ("00:16", "Fail"), 4: ("00:23", "Fail")},
        "dag1": {1: ("00:01", "27:13"), 2: ("00:01", "Fail"),
                 3: ("00:02", "Fail"), 4: ("00:03", "Fail")},
        "tree": {1: ("00:00", "25:31"), 2: ("00:01", "Fail"),
                 3: ("00:01", "Fail"), 4: ("00:02", "Fail")},
    },
    "single_strip_block": {
        "dag2": {1: ("00:00", "24:04"), 2: ("00:06", "Fail"),
                 3: ("00:11", "Fail"), 4: ("00:15", "Fail")},
        "dag1": {1: ("00:00", "23:57"), 2: ("00:02", "Fail"),
                 3: ("00:02", "Fail"), 4: ("00:03", "Fail")},
        "tree": {1: ("00:00", "19:14"), 2: ("00:00", "Fail"),
                 3: ("00:01", "Fail"), 4: ("00:01", "Fail")},
    },
    "single_block": {
        "dag2": {1: ("00:00", "00:28"), 2: ("00:00", "Fail"),
                 3: ("00:00", "Fail"), 4: ("00:02", "Fail")},
        "dag1": {1: ("00:00", "00:26"), 2: ("00:00", "Fail"),
                 3: ("00:00", "Fail"), 4: ("00:00", "Fail")},
        "tree": {1: ("00:00", "00:20"), 2: ("00:00", "Fail"),
                 3: ("00:00", "Fail"), 4: ("00:00", "Fail")},
    },
}
