"""Pipeline-aware execution timelines for annotated plans.

The optimizer's objective, like the paper's, is the *sum* of stage costs
(``Cost(G')``).  A real engine overlaps independent stages, so the wall
clock is closer to the critical path of the stage DAG.  This module builds
an ASAP (as-soon-as-possible) schedule of a plan's stages, reports the
critical path, and renders a text Gantt chart — useful for understanding
where a plan's time goes and how much pipeline parallelism it exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.annotation import Plan
from ..core.graph import VertexId
from ..core.registry import OptimizerContext
from .stages import StageGraph, lower


@dataclass(frozen=True)
class ScheduledStage:
    """One stage placed on the timeline."""

    name: str
    kind: str                 # "op" or "transform"
    vertex: VertexId          # consumer vertex
    start: float
    end: float
    on_critical_path: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An ASAP schedule of a plan's stages."""

    stages: list[ScheduledStage]
    sequential_seconds: float
    critical_path_seconds: float

    @property
    def parallelism(self) -> float:
        """How much pipeline overlap the plan exposes (>= 1.0)."""
        if self.critical_path_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.critical_path_seconds

    def critical_path(self) -> list[ScheduledStage]:
        return [s for s in self.stages if s.on_critical_path]

    def gantt(self, width: int = 60) -> str:
        """Text Gantt chart, one row per stage."""
        if not self.stages:
            return "(empty plan)"
        total = max(self.critical_path_seconds, 1e-12)
        lines = [f"timeline: {self.critical_path_seconds:.2f}s critical "
                 f"path, {self.sequential_seconds:.2f}s sequential "
                 f"(x{self.parallelism:.2f} overlap)"]
        for s in sorted(self.stages, key=lambda s: (s.start, s.end)):
            begin = int(round(width * s.start / total))
            length = max(1, int(round(width * s.duration / total)))
            bar = " " * begin + ("#" if s.on_critical_path else "-") * length
            marker = "*" if s.on_critical_path else " "
            lines.append(f"{s.name:36.36s}{marker}|{bar:<{width + 2}s}| "
                         f"{s.duration:8.2f}s")
        return "\n".join(lines)


def timeline_of(sgraph: StageGraph) -> Timeline:
    """ASAP-schedule a lowered stage graph and find the critical path."""
    sched = sgraph.asap()
    scheduled = [
        ScheduledStage(s.name, s.kind, s.vertex, sched.starts[s.sid],
                       sched.ends[s.sid], s.sid in sched.on_critical_path)
        for s in sgraph.stages]
    return Timeline(scheduled, sgraph.sum_seconds, sched.makespan)


def schedule(plan: Plan, ctx: OptimizerContext) -> Timeline:
    """ASAP-schedule the plan's stages and find the critical path.

    The plan is lowered to its physical stage DAG
    (:func:`repro.engine.stages.lower`) — a transformation stage depends on
    its producer's operator stage, an operator stage on all of its
    transformation stages — and placed as soon as dependencies allow.
    Stage durations come from the cost model under ``ctx``, which under the
    planning context equal the plan's evaluated costs.
    """
    return timeline_of(lower(plan, ctx))
