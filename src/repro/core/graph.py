"""Compute graphs (paper Section 4.1).

A compute graph is a DAG whose source vertices are input matrices (labeled
with a matrix type *and* a physical implementation) and whose inner vertices
are atomic computations.  Edges carry data; the inputs of a vertex are
*ordered* because not all atomic computations are commutative.

Matrix types of inner vertices are inferred from the sources through the
atomic computations' type functions.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass

from .atoms import AtomicOp
from .formats import PhysicalFormat
from .types import MatrixType

VertexId = int


@dataclass(frozen=True)
class Vertex:
    """One vertex of a compute graph.

    Source vertices have ``op is None`` and carry their given physical
    ``format``; inner vertices carry the atomic computation and the ordered
    ids of their argument vertices.
    """

    vid: VertexId
    name: str
    mtype: MatrixType
    op: AtomicOp | None = None
    inputs: tuple[VertexId, ...] = ()
    format: PhysicalFormat | None = None
    #: Optional scalar parameter (e.g. the constant of ``scalar_mul``).
    param: float | None = None

    @property
    def is_source(self) -> bool:
        return self.op is None


@dataclass(frozen=True)
class Edge:
    """A directed edge, identified by its consumer and argument slot.

    Using the argument position disambiguates multi-edges such as
    ``T1 x T1`` where the same producer feeds two slots.
    """

    src: VertexId
    dst: VertexId
    arg_pos: int


class GraphError(ValueError):
    """Raised when a compute graph is malformed or not type-correct."""


class ComputeGraph:
    """A typed LA/ML computation DAG under construction or analysis."""

    def __init__(self) -> None:
        self._vertices: dict[VertexId, Vertex] = {}
        self._consumers: dict[VertexId, list[Edge]] = {}
        self._next_id: VertexId = 0
        self._outputs: list[VertexId] = []

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def add_source(self, name: str, mtype: MatrixType,
                   fmt: PhysicalFormat) -> VertexId:
        """Add an input matrix with its given physical implementation."""
        if not fmt.admits(mtype):
            raise GraphError(
                f"source {name!r}: format {fmt} does not admit type {mtype}")
        vid = self._allocate()
        self._vertices[vid] = Vertex(vid, name, mtype, None, (), fmt)
        self._consumers[vid] = []
        return vid

    def add_op(self, name: str, op: AtomicOp,
               inputs: tuple[VertexId, ...] | list[VertexId],
               param: float | None = None) -> VertexId:
        """Add an atomic computation over previously added vertices."""
        inputs = tuple(inputs)
        if len(inputs) != op.arity:
            raise GraphError(
                f"{name!r}: {op.name} takes {op.arity} inputs, got {len(inputs)}")
        in_types = []
        for src in inputs:
            if src not in self._vertices:
                raise GraphError(f"{name!r}: unknown input vertex {src}")
            in_types.append(self._vertices[src].mtype)
        out_type = op.out_type(*in_types)
        if out_type is None:
            raise GraphError(
                f"{name!r}: {op.name} rejects input types "
                f"{[str(t) for t in in_types]}")
        vid = self._allocate()
        self._vertices[vid] = Vertex(vid, name, out_type, op, inputs, None,
                                     param)
        self._consumers[vid] = []
        for pos, src in enumerate(inputs):
            self._consumers[src].append(Edge(src, vid, pos))
        return vid

    def _allocate(self) -> VertexId:
        vid = self._next_id
        self._next_id += 1
        return vid

    # ------------------------------------------------------------------
    # Access
    # ------------------------------------------------------------------
    def vertex(self, vid: VertexId) -> Vertex:
        return self._vertices[vid]

    @property
    def vertices(self) -> tuple[Vertex, ...]:
        return tuple(self._vertices.values())

    @property
    def vertex_ids(self) -> tuple[VertexId, ...]:
        return tuple(self._vertices)

    @property
    def sources(self) -> tuple[Vertex, ...]:
        return tuple(v for v in self._vertices.values() if v.is_source)

    @property
    def inner_vertices(self) -> tuple[Vertex, ...]:
        return tuple(v for v in self._vertices.values() if not v.is_source)

    @property
    def edges(self) -> tuple[Edge, ...]:
        return tuple(e for edges in self._consumers.values() for e in edges)

    def in_edges(self, vid: VertexId) -> tuple[Edge, ...]:
        """Input edges of ``vid`` in argument order."""
        v = self._vertices[vid]
        return tuple(Edge(src, vid, pos) for pos, src in enumerate(v.inputs))

    def out_edges(self, vid: VertexId) -> tuple[Edge, ...]:
        return tuple(self._consumers[vid])

    def out_degree(self, vid: VertexId) -> int:
        return len(self._consumers[vid])

    def sinks(self) -> tuple[Vertex, ...]:
        """Vertices with no consumers."""
        return tuple(v for v in self._vertices.values()
                     if not self._consumers[v.vid])

    def mark_output(self, vid: VertexId) -> None:
        """Declare a vertex as a computation output.

        Needed when an output also feeds other vertices (e.g. the Schur
        complement inverse is both the Dbar output block and an input to
        Bbar/Cbar in the block-inverse workload).
        """
        if vid not in self._vertices:
            raise GraphError(f"unknown vertex {vid}")
        if vid not in self._outputs:
            self._outputs.append(vid)

    @property
    def outputs(self) -> tuple[Vertex, ...]:
        """Declared outputs; falls back to the structural sinks."""
        if self._outputs:
            return tuple(self._vertices[v] for v in self._outputs)
        return self.sinks()

    def __len__(self) -> int:
        return len(self._vertices)

    # ------------------------------------------------------------------
    # Structure
    # ------------------------------------------------------------------
    def topological_order(self) -> tuple[VertexId, ...]:
        """Vertices in dependency order (sources first).

        Construction order is already topological because ``add_op`` only
        accepts existing vertices, but we verify and return it explicitly.
        """
        return tuple(self._vertices)

    def is_tree_shaped(self) -> bool:
        """True when every vertex has at most one out-edge (paper Sec. 5)."""
        return all(len(edges) <= 1 for edges in self._consumers.values())

    def ancestors(self) -> dict[VertexId, int]:
        """Ancestor sets as bitmasks, each vertex included in its own set.

        Used by the frontier algorithm's equivalence classes: two frontier
        vertices belong to the same class iff their ancestor sets intersect.
        """
        masks: dict[VertexId, int] = {}
        for vid in self.topological_order():
            mask = 1 << vid
            for src in self._vertices[vid].inputs:
                mask |= masks[src]
            masks[vid] = mask
        return masks

    def subgraph_counts(self) -> dict[VertexId, int]:
        """Number of vertices in each :math:`G_v` (reachable-to-v subgraph)."""
        masks = self.ancestors()
        return {vid: mask.bit_count() for vid, mask in masks.items()}

    def validate(self) -> None:
        """Check structural invariants; raises :class:`GraphError`."""
        if not self._vertices:
            raise GraphError("empty compute graph")
        seen: set[VertexId] = set()
        for vid, v in self._vertices.items():
            for src in v.inputs:
                if src not in seen:
                    raise GraphError(
                        f"vertex {v.name!r} consumes {src} before definition "
                        "(cycle or forward reference)")
            seen.add(vid)
        if not any(v.is_source for v in self._vertices.values()):
            raise GraphError("graph has no source vertices")

    # ------------------------------------------------------------------
    # Surgery (used by the logical rewrite passes)
    # ------------------------------------------------------------------
    def consumers_of(self, vid: VertexId) -> tuple[VertexId, ...]:
        """Distinct consumer vertex ids of ``vid``."""
        return tuple(dict.fromkeys(e.dst for e in self._consumers[vid]))

    def is_output(self, vid: VertexId) -> bool:
        """True when ``vid`` is a *declared* output."""
        return vid in self._outputs

    def replace_uses(self, old: VertexId, new: VertexId) -> int:
        """Redirect every consumer edge (and output marking) of ``old`` to
        ``new``; returns the number of rewritten argument slots.

        Both vertices must exist and have the same shape.  The replacement
        must not create a cycle: no consumer of ``old`` may be an ancestor
        of ``new``.  ``old`` itself is left in place (possibly dead); use
        :meth:`remove_vertex` or :meth:`pruned` to drop it, and
        :meth:`compacted` to restore dense, topologically ordered ids.
        """
        if old == new:
            return 0
        for vid in (old, new):
            if vid not in self._vertices:
                raise GraphError(f"unknown vertex {vid}")
        o, n = self._vertices[old], self._vertices[new]
        if (o.mtype.rows, o.mtype.cols) != (n.mtype.rows, n.mtype.cols):
            raise GraphError(
                f"cannot replace uses of {o.name!r} ({o.mtype}) with "
                f"{n.name!r} ({n.mtype}): shapes differ")
        cone = self._ancestor_cone(new)
        for edge in self._consumers[old]:
            if edge.dst in cone:
                raise GraphError(
                    f"replacing uses of {o.name!r} with {n.name!r} would "
                    f"create a cycle through {self._vertices[edge.dst].name!r}")
        replaced = 0
        for edge in tuple(self._consumers[old]):
            consumer = self._vertices[edge.dst]
            inputs = tuple(new if (pos == edge.arg_pos and src == old) else src
                           for pos, src in enumerate(consumer.inputs))
            self._vertices[edge.dst] = dataclasses.replace(
                consumer, inputs=inputs)
            self._consumers[new].append(Edge(new, edge.dst, edge.arg_pos))
            replaced += 1
        self._consumers[old] = []
        if old in self._outputs:
            idx = self._outputs.index(old)
            if new in self._outputs:
                del self._outputs[idx]
            else:
                self._outputs[idx] = new
        return replaced

    def _ancestor_cone(self, vid: VertexId) -> set[VertexId]:
        """``vid`` plus everything it (transitively) consumes."""
        cone: set[VertexId] = set()
        stack = [vid]
        while stack:
            cur = stack.pop()
            if cur in cone:
                continue
            cone.add(cur)
            stack.extend(self._vertices[cur].inputs)
        return cone

    def remove_vertex(self, vid: VertexId) -> None:
        """Remove a dead vertex (no consumers, not a declared output)."""
        if vid not in self._vertices:
            raise GraphError(f"unknown vertex {vid}")
        if self._consumers[vid]:
            raise GraphError(
                f"vertex {self._vertices[vid].name!r} still has consumers")
        if vid in self._outputs:
            raise GraphError(
                f"vertex {self._vertices[vid].name!r} is a declared output")
        for src in self._vertices[vid].inputs:
            self._consumers[src] = [e for e in self._consumers[src]
                                    if e.dst != vid]
        del self._vertices[vid]
        del self._consumers[vid]

    def pruned(self) -> "ComputeGraph":
        """A copy without vertices unreachable (backwards) from the outputs.

        Requires declared outputs; without them every sink is live and the
        graph is returned unchanged.
        """
        if not self._outputs:
            return self
        live: set[VertexId] = set()
        stack = list(self._outputs)
        while stack:
            cur = stack.pop()
            if cur in live:
                continue
            live.add(cur)
            stack.extend(self._vertices[cur].inputs)
        return self.compacted(keep=live)[0]

    def compacted(self, keep: set[VertexId] | None = None
                  ) -> tuple["ComputeGraph", dict[VertexId, VertexId]]:
        """A fresh, topologically ordered copy with dense ids.

        Re-runs type inference through ``add_op`` (re-validating the graph
        after surgery) and returns the old-id -> new-id mapping.  ``keep``
        restricts the copy to a subset of vertices (used by :meth:`pruned`).
        Raises :class:`GraphError` when the surgered graph has a cycle.
        """
        wanted = set(self._vertices) if keep is None else keep
        # Count *distinct* producers: the ready-loop decrements once per
        # distinct consumer, so duplicate argument edges (T1 x T1) must not
        # be double counted.
        pending: dict[VertexId, int] = {
            vid: len({src for src in self._vertices[vid].inputs
                      if src in wanted})
            for vid in self._vertices if vid in wanted}
        ready = [vid for vid, deps in pending.items() if deps == 0]
        out = ComputeGraph()
        mapping: dict[VertexId, VertexId] = {}
        while ready:
            vid = ready.pop(0)
            v = self._vertices[vid]
            if v.is_source:
                mapping[vid] = out.add_source(v.name, v.mtype, v.format)
            else:
                mapping[vid] = out.add_op(
                    v.name, v.op, tuple(mapping[s] for s in v.inputs),
                    param=v.param)
            for consumer in self.consumers_of(vid):
                if consumer not in pending:
                    continue
                pending[consumer] -= 1
                if pending[consumer] == 0:
                    ready.append(consumer)
        if len(mapping) != len(wanted):
            raise GraphError("graph surgery left a cycle")
        for o in self._outputs:
            if o in mapping:
                out.mark_output(mapping[o])
        return out, mapping

    def describe(self) -> str:
        """Human-readable listing, one vertex per line."""
        lines = []
        for v in self._vertices.values():
            if v.is_source:
                lines.append(f"  [{v.vid}] {v.name}: input {v.mtype} @ {v.format}")
            else:
                args = ", ".join(str(i) for i in v.inputs)
                lines.append(
                    f"  [{v.vid}] {v.name}: {v.op.name}({args}) -> {v.mtype}")
        return "\n".join(lines)
