"""Benches for the implemented future-work extensions (DESIGN.md §5).

Each regenerates one extension experiment and asserts its headline:
sketch-refined planning produces cheaper plans on structured-sparse chains;
mid-execution re-optimization beats running a misestimated plan to
completion; the GPU catalog beats CPU-only planning when GPUs exist.
"""

from repro.experiments.extensions import (
    ext_adaptive_reopt,
    ext_gpu_catalog,
    ext_optimizer_scaling,
    ext_sketch_refinement,
)


def _seconds(cell: str) -> float:
    return float(cell.rstrip("s"))


def test_sketch_refinement(benchmark, print_table):
    table = benchmark.pedantic(ext_sketch_refinement, rounds=1, iterations=1)
    print_table(table)
    scalar = _seconds(table.rows[0][2])
    refined = _seconds(table.rows[1][2])
    # The MNC-refined plan is cheaper under the true sparsity...
    assert refined < scalar
    # ...and the mid-chain estimates differ dramatically (scalar says the
    # product of structured-sparse matrices is dense; the sketch does not).
    assert float(table.rows[0][1]) > 2 * float(table.rows[1][1])


def test_adaptive_reoptimization(benchmark, print_table):
    table = benchmark.pedantic(ext_adaptive_reopt, rounds=1, iterations=1)
    print_table(table)
    static = float(table.rows[0][1])
    adaptive = float(table.rows[1][1])
    replans = int(table.rows[1][2])
    assert replans >= 1
    assert adaptive < static


def test_optimizer_scaling(benchmark, print_table):
    table = benchmark.pedantic(ext_optimizer_scaling, rounds=1, iterations=1)
    print_table(table)
    widest = table.rows[-1]
    # The prune is lossless: the cost column flags any divergence.
    for row in table.rows:
        assert "!=" not in row[6]
    # Search-effort reductions are deterministic; wall-clock speedup is
    # machine-dependent but must clearly show on the widest DAG.
    pruned_peak, plain_peak = (int(c) for c in widest[5].split(" / "))
    assert plain_peak > 100 * pruned_peak
    assert float(widest[4].rstrip("x")) >= 5.0


def test_gpu_catalog(benchmark, print_table):
    table = benchmark.pedantic(ext_gpu_catalog, rounds=1, iterations=1)
    print_table(table)
    cpu = float(table.rows[0][1])
    gpu = float(table.rows[1][1])
    assert gpu < cpu
    assert "mm_gpu" in table.rows[1][2]
    assert "mm_gpu" not in table.rows[0][2]
