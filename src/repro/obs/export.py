"""Span-stream exporters: JSONL and Chrome/Perfetto trace format.

* :func:`write_jsonl` / :func:`read_jsonl` — one span per line, losslessly
  round-trippable (the machine-readable archive format);
* :func:`chrome_trace` / :func:`write_chrome_trace` — the Trace Event
  Format understood by ``chrome://tracing`` and https://ui.perfetto.dev:
  every span becomes a complete (``"ph": "X"``) event, with tracks
  assigned so that spans on one track only ever nest, never overlap.

:func:`export_trace` picks the format from the file extension
(``.jsonl`` → JSONL, anything else → Chrome JSON).
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

from .tracer import Span, Tracer

__all__ = ["write_jsonl", "read_jsonl", "chrome_trace",
           "write_chrome_trace", "export_trace", "validate_spans"]


def _as_spans(source: "Tracer | Iterable[Span]") -> list[Span]:
    if isinstance(source, Tracer):
        return source.spans()
    return list(source)


# ----------------------------------------------------------------------
# JSONL
# ----------------------------------------------------------------------
def write_jsonl(source: "Tracer | Iterable[Span]", path: str) -> int:
    """Write one JSON object per span; returns the span count."""
    spans = _as_spans(source)
    with open(path, "w", encoding="utf-8") as fh:
        for span in spans:
            fh.write(json.dumps(span.to_dict(), sort_keys=True) + "\n")
    return len(spans)


def read_jsonl(path: str) -> list[Span]:
    """Read spans back from a JSONL trace file."""
    spans = []
    with open(path, encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                spans.append(Span.from_dict(json.loads(line)))
    return spans


# ----------------------------------------------------------------------
# Chrome trace format
# ----------------------------------------------------------------------
def _assign_tracks(spans: Sequence[Span]) -> list[int]:
    """Greedy track assignment: a span joins the first track whose open
    spans all *contain* it (pure nesting); overlapping siblings — e.g.
    thread-pool stages running concurrently — land on separate tracks, so
    the Chrome/Perfetto stack reconstruction never sees a partial overlap.
    """
    order = sorted(range(len(spans)),
                   key=lambda i: (spans[i].start, -spans[i].end, spans[i].sid))
    tracks: list[list[Span]] = []          # per track: stack of open spans
    assigned = [0] * len(spans)
    eps = 1e-12
    for i in order:
        span = spans[i]
        placed = False
        for tid, stack in enumerate(tracks):
            while stack and stack[-1].end <= span.start + eps:
                stack.pop()
            if not stack or (stack[-1].start <= span.start + eps
                             and span.end <= stack[-1].end + eps):
                stack.append(span)
                assigned[i] = tid
                placed = True
                break
        if not placed:
            tracks.append([span])
            assigned[i] = len(tracks) - 1
    return assigned


def chrome_trace(source: "Tracer | Iterable[Span]") -> dict:
    """Render spans as a Trace Event Format document (times in µs)."""
    spans = _as_spans(source)
    tracks = _assign_tracks(spans)
    events = []
    for span, tid in zip(spans, tracks):
        events.append({
            "name": span.name,
            "cat": span.kind,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": max(span.duration, 0.0) * 1e6,
            "pid": 1,
            "tid": tid,
            "args": {"sid": span.sid, "parent": span.parent,
                     **{k: v for k, v in span.attrs.items()}},
        })
    return {"traceEvents": events, "displayTimeUnit": "ms"}


def write_chrome_trace(source: "Tracer | Iterable[Span]", path: str) -> int:
    """Write a Chrome-loadable JSON trace; returns the event count."""
    doc = chrome_trace(source)
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(doc, fh, indent=1)
    return len(doc["traceEvents"])


def export_trace(source: "Tracer | Iterable[Span]", path: str) -> int:
    """Export by extension: ``.jsonl`` → JSONL, else Chrome trace JSON."""
    if path.endswith(".jsonl"):
        return write_jsonl(source, path)
    return write_chrome_trace(source, path)


# ----------------------------------------------------------------------
# Schema validation (used by tests and the overhead regression gate)
# ----------------------------------------------------------------------
def validate_spans(spans: Sequence[Span]) -> None:
    """Check span-stream invariants; raises ``ValueError`` on violation.

    * ids are unique and every parent id names another span in the stream;
    * every span's interval is well formed (``end >= start``);
    * children are contained in their parent's interval (nesting).
    """
    by_sid = {}
    for span in spans:
        if span.sid in by_sid:
            raise ValueError(f"duplicate span id {span.sid!r}")
        by_sid[span.sid] = span
    for span in spans:
        if span.end < span.start:
            raise ValueError(f"span {span.sid!r} ends before it starts")
        if span.parent is None:
            continue
        parent = by_sid.get(span.parent)
        if parent is None:
            raise ValueError(
                f"span {span.sid!r} names missing parent {span.parent!r}")
        eps = 1e-9
        if span.start < parent.start - eps or span.end > parent.end + eps:
            raise ValueError(
                f"span {span.sid!r} [{span.start}, {span.end}] escapes its "
                f"parent {parent.sid!r} [{parent.start}, {parent.end}]")
