"""Cross-query differential harness for multi-query batch optimization.

Generates 200 seeded random batches — N queries over the same named
sources, sharing a common prefix recipe plus private per-query suffixes —
and proves the three contracts of :func:`repro.core.batch.optimize_batch`
on every one of them:

* **never worse**: the merged batch plan's predicted cost never exceeds
  the sum of independently optimized solo plans;
* **frontier identity**: the ``array`` and ``object`` frontier tables
  produce bit-identical merged plans (exact ``==``, no tolerance);
* **numerics**: executing a batch member's per-query plan — and
  splitting the merged plan's execution per query — is ``allclose`` to
  executing its solo plan.

The cost sweep uses the brute-oracle catalog at 2000/3000-dim matrices;
the numeric subset drops to 48-dim matrices with block sizes that admit
them (``tiles(1000)`` blocks cannot store a 48x48 matrix).
"""

import math
import random

import numpy as np
import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix
from repro.core.atoms import ADD, ELEM_MUL, MATMUL, RELU, SUB, TRANSPOSE
from repro.core.batch import merge_graphs, optimize_batch
from repro.core.formats import row_strips, single, tiles
from repro.core.optimizer import optimize
from repro.engine.executor import execute_plan
from repro.workloads import amazoncat_config, ffnn_forward, ffnn_full_step

#: The brute-force differential suite's catalog, at the same dims.
ORACLE_FORMATS = (single(), tiles(1000), row_strips(1000))

#: Small-matrix catalog for the numeric-execution subset: every format
#: must admit a 48x48 matrix.
SMALL_FORMATS = (single(), tiles(16), row_strips(16))

OPS = (MATMUL, ADD, SUB, ELEM_MUL, RELU, TRANSPOSE)


def random_batch(seed: int, nqueries: int, inner: int, sharing: float,
                 dims=(2000, 3000), block: int = 1000) -> list[ComputeGraph]:
    """N seeded random queries with genuine cross-query overlap.

    All queries declare the same sources (same names, types and stored
    formats — the batch contract) and apply the same shared prefix
    recipe; each then grows a private suffix whose arguments reuse
    earlier vertices with probability ``sharing``.
    """
    rng = random.Random(seed)
    n = rng.choice(list(dims))
    nsrc = rng.randint(2, 3)
    sources = [(f"S{i}", rng.choice([single(), tiles(block)]))
               for i in range(nsrc)]
    prefix = []
    for i in range(rng.randint(1, inner)):
        ops = [op for op in OPS if op.arity <= 2]
        op = rng.choice(ops)
        prefix.append((op, tuple(rng.randrange(nsrc + i)
                                 for _ in range(op.arity))))

    graphs = []
    for qi in range(nqueries):
        qrng = random.Random(seed * 613 + qi)
        g = ComputeGraph()
        pool = [g.add_source(name, matrix(n, n), fmt)
                for name, fmt in sources]
        for i, (op, args) in enumerate(prefix):
            pool.append(g.add_op(f"p{i}", op,
                                 tuple(pool[a] for a in args)))
        for i in range(qrng.randint(1, inner)):
            op = qrng.choice(OPS)
            picks = tuple(
                qrng.choice(pool[nsrc:]) if pool[nsrc:]
                and qrng.random() < sharing else qrng.choice(pool)
                for _ in range(op.arity))
            pool.append(g.add_op(f"q{qi}_{i}", op, picks))
        g.mark_output(pool[-1])
        graphs.append(g)
    return graphs


#: 40 parameter sets x 5 sub-seeds = 200 random batches.
BATCH_CASES = [(batch, nq, inner, sharing)
               for nq, inner, sharing in [(2, 2, 0.3), (2, 3, 0.5),
                                          (3, 2, 0.7), (3, 3, 0.9),
                                          (4, 2, 0.5)]
               for batch in range(8)]


def _case_seed(batch: int, sub: int, inner: int, sharing: float,
               nq: int) -> int:
    return batch * 1000 + sub + inner * 37 + int(sharing * 100) + nq * 7


class TestBatchDifferential:
    """200 random batches: never-worse cost and bit-identical frontiers."""

    @pytest.mark.parametrize("batch,nq,inner,sharing", BATCH_CASES)
    def test_never_worse_and_frontier_identity(self, batch, nq, inner,
                                               sharing):
        ctx = OptimizerContext(formats=ORACLE_FORMATS)
        for sub in range(5):
            seed = _case_seed(batch, sub, inner, sharing, nq)
            graphs = random_batch(seed, nq, inner, sharing)
            solo = [optimize(g, ctx) for g in graphs]
            solo_total = sum(p.total_seconds for p in solo)
            ba = optimize_batch(graphs, ctx, frontier="array")
            bo = optimize_batch(graphs, ctx, frontier="object")

            # Never worse: sharing can only remove work.
            assert ba.merged.total_seconds <= solo_total * (1 + 1e-9), \
                f"seed={seed}: batch plan worse than solo sum"

            # Array vs object frontier: exact equality, not approx.
            assert ba.merged.total_seconds == bo.merged.total_seconds
            assert ba.merged.cost.vertex_formats == \
                bo.merged.cost.vertex_formats
            assert ba.merged.annotation.impls == bo.merged.annotation.impls
            assert ba.merged.annotation.transforms == \
                bo.merged.annotation.transforms
            assert ba.cse_hits == bo.cse_hits
            assert ba.shared_vertices == bo.shared_vertices
            for qa, qo in zip(ba.queries, bo.queries):
                assert qa.plan.total_seconds == qo.plan.total_seconds
                assert qa.plan.annotation.impls == qo.plan.annotation.impls

            # Every per-query plan must be independently executable:
            # costing it proves impls/transforms cover the whole graph.
            for q in ba.queries:
                assert math.isfinite(q.plan.total_seconds)


class TestBatchNumerics:
    """Executing batch plans reproduces solo-plan numerics exactly."""

    @pytest.mark.parametrize("case", range(12))
    def test_allclose_to_solo(self, case):
        nq = 3
        seed = 5000 + case * 17
        ctx = OptimizerContext(formats=SMALL_FORMATS)
        graphs = random_batch(seed, nq, inner=2, sharing=0.6,
                              dims=(48,), block=16)
        rng = np.random.default_rng(seed)
        inputs = {s.name: rng.standard_normal((s.mtype.rows, s.mtype.cols))
                  for g in graphs for s in g.sources}

        batch = optimize_batch(graphs, ctx)
        merged_run = execute_plan(batch.merged, inputs, ctx)
        assert merged_run.ok
        for qi, g in enumerate(graphs):
            solo_run = execute_plan(optimize(g, ctx), inputs, ctx)
            assert solo_run.ok
            query_run = execute_plan(batch.queries[qi].plan, inputs, ctx)
            assert query_run.ok
            split = batch.query_outputs(qi, merged_run.vertex_values)
            assert set(split) == set(solo_run.outputs)
            for name, expected in solo_run.outputs.items():
                np.testing.assert_allclose(query_run.outputs[name],
                                           expected, rtol=1e-8, atol=1e-8)
                np.testing.assert_allclose(split[name], expected,
                                           rtol=1e-8, atol=1e-8)


class TestBatchStructure:
    """Stitching, provenance and error contracts."""

    def test_ffnn_pair_shares_forward_pass(self):
        """The golden mix: a forward pass co-submitted with the training
        step that contains it merges into one forward computation."""
        cfg = amazoncat_config(batch=2000, hidden=8000)
        graphs = [ffnn_forward(cfg), ffnn_full_step(cfg)]
        ctx = OptimizerContext()
        batch = optimize_batch(graphs, ctx, max_states=500)
        solo_total = sum(optimize(g, ctx, max_states=500).total_seconds
                         for g in graphs)
        assert batch.cse_hits > 0
        assert batch.merged.total_seconds < solo_total  # strictly cheaper
        for q in batch.queries:
            profile = q.plan.profile
            assert profile is not None
            assert profile.batch_queries == 2
            assert profile.shared_subplans  # forward-pass vertices
            assert q.shared == profile.shared_subplans
        merged_profile = batch.merged.profile
        assert merged_profile.batch_queries == 2
        assert "co-planned with 2 queries" in merged_profile.describe()

    def test_merge_counts_shared_vertices(self):
        graphs = random_batch(123, 3, inner=2, sharing=0.5)
        merged, maps, used_by, cse_hits = merge_graphs(graphs)
        assert len(maps) == 3
        # Sources are declared by every query, so they are all shared.
        for g, vmap in zip(graphs, maps):
            for s in g.sources:
                assert used_by[vmap[s.vid]] == {0, 1, 2}
        # Every query output survives on the merged graph.
        out_vids = {v.vid for v in merged.outputs}
        for g, vmap in zip(graphs, maps):
            for out in g.outputs:
                assert vmap[out.vid] in out_vids
        assert cse_hits >= 0

    def test_empty_batch_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            optimize_batch([])

    def test_conflicting_sources_rejected(self):
        g1, g2 = ComputeGraph(), ComputeGraph()
        a1 = g1.add_source("A", matrix(100, 100), single())
        g1.mark_output(g1.add_op("r", RELU, (a1,)))
        a2 = g2.add_source("A", matrix(100, 100), tiles(50))
        g2.mark_output(g2.add_op("r", RELU, (a2,)))
        with pytest.raises(ValueError, match="disagree on source 'A'"):
            optimize_batch([g1, g2])

    def test_bad_knobs_rejected_eagerly(self):
        graphs = random_batch(7, 2, inner=2, sharing=0.5)
        with pytest.raises(ValueError, match="unknown algorithm"):
            optimize_batch(graphs, algorithm="fastest")
        with pytest.raises(ValueError, match="unknown frontier"):
            optimize_batch(graphs, frontier="arry")
        with pytest.raises(ValueError, match="rewrites"):
            optimize_batch(graphs, rewrites="pipelin")

    def test_singleton_batch_matches_solo(self):
        """A batch of one is just the solo optimizer with provenance."""
        ctx = OptimizerContext(formats=ORACLE_FORMATS)
        (g,) = random_batch(42, 1, inner=3, sharing=0.5)
        solo = optimize(g, ctx)
        batch = optimize_batch([g], ctx)
        assert batch.merged.total_seconds == solo.total_seconds
        assert batch.queries[0].plan.total_seconds == solo.total_seconds
        assert batch.queries[0].plan.profile.batch_queries == 1
