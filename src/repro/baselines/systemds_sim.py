"""SystemDS-like per-operator optimizer (paper Sections 8.3, 9).

SystemDS (formerly SystemML) pioneered automatic format/operator selection,
but — as the paper's related-work section stresses — it decides *per
operator* (or per small fused group): fixed 1000 x 1000 dense blocks or a
single driver-local matrix, CSR for sparse data, local vs. distributed by
memory estimates.  It does not globally optimize layouts and does not cost
the transformations between them.

This baseline reproduces that design point on our catalog: a rule planner
restricted to SystemDS's formats with its local/distributed/mapmm decision
rules, planned greedily per vertex.
"""

from __future__ import annotations

from ..core.formats import PhysicalFormat, csr_strips, single, tiles
from ..core.registry import OptimizerContext
from ..core.types import MatrixType
from .common import GiB, RulePlanner, matches

#: SystemDS control-program (driver) memory budget for local operations.
DRIVER_BUDGET = 12 * GiB
#: Sparsity below which SystemDS keeps data in sparse (CSR-ish) blocks.
SPARSE_THRESHOLD = 0.4
#: Broadcast-side limit for map-side multiplies (mapmm).
MAPMM_LIMIT = 2 * GiB


def systemds_format(mtype: MatrixType) -> PhysicalFormat:
    """The format SystemDS would hold a matrix in."""
    if mtype.sparsity < SPARSE_THRESHOLD:
        fmt = csr_strips(1000)
        if fmt.admits(mtype):
            return fmt
    if mtype.dense_bytes <= DRIVER_BUDGET / 3:
        return single()
    return tiles(1000)


class SystemDSPlanner(RulePlanner):
    """Per-operator SystemDS-style decisions on our catalog."""

    name = "systemds"

    def preference(self, vertex, in_types, impl_name, in_fmts, out_fmt,
                   ctx: OptimizerContext) -> float:
        score = 0.0
        for t, f in zip(in_types, in_fmts):
            score += matches(f, systemds_format(t))
        score += matches(out_fmt, systemds_format(vertex.mtype))

        total_bytes = sum(t.dense_bytes for t in in_types) \
            + vertex.mtype.dense_bytes
        if vertex.op.name == "matmul":
            small = min(t.dense_bytes for t in in_types)
            if total_bytes <= DRIVER_BUDGET and impl_name in (
                    "mm_local_single", "mm_sparse_local"):
                # CP (control program) local multiply.
                score += 2.0
            elif small <= MAPMM_LIMIT and impl_name in (
                    "mm_bcast_left", "mm_bcast_right", "mm_csr_bcast_dense",
                    "mm_tile_bcast"):
                # Spark mapmm: broadcast the small side.
                score += 1.5
            elif impl_name == "mm_tile_shuffle":
                # Spark RMM: replicated/shuffle block multiply.
                score += 0.5
        elif total_bytes <= DRIVER_BUDGET and in_fmts and \
                all(f.is_single for f in in_fmts):
            score += 1.0
        return score


def plan_systemds(graph, ctx: OptimizerContext):
    """Convenience wrapper: annotate ``graph`` with SystemDS-style rules."""
    return SystemDSPlanner().plan(graph, ctx)
