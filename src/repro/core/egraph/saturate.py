"""Budgeted equality saturation over a compute graph.

:func:`saturate_graph` seeds an :class:`~repro.core.egraph.EGraph` from a
:class:`~repro.core.graph.ComputeGraph`, applies every rule in the shared
:data:`~repro.core.egraph.rules.RULE_TABLE` until a fixpoint (no rule
produces a new merge) or a :class:`SaturationBudget` runs out, then hands
the e-graph to the catalog-cost-guided extractor and returns the cheapest
represented graph plus a
:class:`~repro.core.rewrites.base.SaturationReport`.

Budgets make saturation total: associativity and distributivity are
productive rules that can grow the e-graph combinatorially on long matmul
chains, so the loop is bounded by iterations, e-nodes, e-classes and wall
clock.  Stopping early is always safe — the seed term is never removed, so
extraction can at worst return the original graph.

The default budget is part of the engine's observable behaviour: bump
:data:`~repro.core.egraph.rules.RULESET_VERSION` when changing it, so plan
caches never serve plans across budget revisions.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from ...obs.tracer import NULL_TRACER, Tracer, as_tracer
from ..graph import ComputeGraph
from ..registry import OptimizerContext
from ..rewrites.base import SaturationReport
from .egraph import EGraph
from .extract import extract
from .rules import RULE_TABLE


@dataclass(frozen=True)
class SaturationBudget:
    """Stop conditions for the saturation loop (checked between rules)."""

    max_iterations: int = 8
    max_e_nodes: int = 5_000
    max_e_classes: int = 2_500
    max_seconds: float = 2.5

    def exceeded(self, eg: EGraph, started: float) -> str | None:
        """The first budget the e-graph has outgrown, or None."""
        if eg.n_nodes >= self.max_e_nodes:
            return "e_nodes"
        if eg.n_classes >= self.max_e_classes:
            return "e_classes"
        if time.perf_counter() - started >= self.max_seconds:
            return "seconds"
        return None


#: Budget used by ``optimize(rewrites="egraph")``.
DEFAULT_BUDGET = SaturationBudget()


def saturate(eg: EGraph, budget: SaturationBudget = DEFAULT_BUDGET,
             tracer: Tracer = NULL_TRACER
             ) -> tuple[int, dict[str, int], bool, str | None]:
    """Run the rule loop on ``eg`` in place.

    Returns ``(iterations, per-rule merge counts, saturated,
    budget_exhausted)``.  Rules run in table order within an iteration and
    the e-graph is rebuilt (congruence closure restored) after each rule,
    so the merge sequence is deterministic.
    """
    started = time.perf_counter()
    applied: dict[str, int] = {}
    saturated = False
    exhausted: str | None = None
    iterations = 0
    # Growth caps enforced inside add_op: between-rule budget checks alone
    # cannot stop one explosive rule sweep (associativity on a deep matmul
    # DAG can otherwise add hundreds of thousands of nodes in one scan).
    eg.growth_limit = budget.max_e_nodes
    eg.deadline = started + budget.max_seconds
    with tracer.span("egraph:saturate", kind="egraph") as span:
        while iterations < budget.max_iterations:
            exhausted = budget.exceeded(eg, started)
            if exhausted:
                break
            iterations += 1
            round_total = 0
            for rule in RULE_TABLE:
                count = rule.apply(eg)
                eg.rebuild()
                if count:
                    applied[rule.name] = applied.get(rule.name, 0) + count
                    round_total += count
                exhausted = budget.exceeded(eg, started)
                if exhausted:
                    break
            if exhausted:
                break
            if round_total == 0:
                saturated = True
                break
        else:
            exhausted = "iterations"
        span.set(iterations=iterations, e_nodes=eg.n_nodes,
                 e_classes=eg.n_classes, saturated=saturated,
                 budget_exhausted=exhausted or "")
    eg.growth_limit = None
    eg.deadline = None
    return iterations, applied, saturated, exhausted


def saturate_graph(graph: ComputeGraph, ctx: OptimizerContext,
                   budget: SaturationBudget = DEFAULT_BUDGET,
                   tracer: Tracer | None = None
                   ) -> tuple[ComputeGraph, SaturationReport]:
    """Saturate ``graph`` and extract the catalog-cheapest equivalent.

    The returned report records e-graph size, per-rule merge counts (with
    hash-consing CSE charged to the ``cse`` table entry), whether a
    fixpoint or a budget ended saturation, and the extracted term's
    estimated operator cost.
    """
    tracer = as_tracer(tracer)
    started = time.perf_counter()
    eg = EGraph.from_graph(graph)
    iterations, applied, saturated, exhausted = saturate(
        eg, budget, tracer)
    if eg.cse_merges:
        applied["cse"] = applied.get("cse", 0) + eg.cse_merges
    with tracer.span("egraph:extract", kind="egraph") as span:
        extracted, cost = extract(eg, ctx)
        span.set(cost=cost, vertices=len(extracted))
    rules_applied = tuple(
        (rule.name, applied[rule.name])
        for rule in RULE_TABLE if rule.name in applied)
    report = SaturationReport(
        iterations=iterations, e_nodes=eg.n_nodes, e_classes=eg.n_classes,
        rules_applied=rules_applied, saturated=saturated,
        budget_exhausted=exhausted, extraction_cost=cost,
        seconds=time.perf_counter() - started)
    return extracted, report
