"""Plan serialization: annotated plans to/from JSON-compatible dicts.

A production deployment caches optimized plans (planning a 57-vertex FFNN
takes seconds) and ships them to the execution engine; this module provides
the stable wire format.  Implementations and transformations are referenced
by catalog name, formats by a structural descriptor, and the graph by its
construction order — so a deserialized plan is bit-identical in cost under
the same :class:`OptimizerContext`.
"""

from __future__ import annotations

import json
from typing import Any

import dataclasses

from .annotation import Annotation, Plan, make_plan
from .atoms import atom_by_name
from .formats import Layout, PhysicalFormat
from .graph import ComputeGraph, Edge
from .implementations import DEFAULT_IMPLEMENTATIONS, fused_impl_by_name
from .profile import OptimizerProfile
from .registry import OptimizerContext
from .rewrites import PipelineReport
from .transforms import DEFAULT_TRANSFORMS
from .types import MatrixType


class SerializationError(ValueError):
    """Raised when a plan payload does not round-trip."""


# ----------------------------------------------------------------------
# Formats and types
# ----------------------------------------------------------------------
def format_to_dict(fmt: PhysicalFormat) -> dict[str, Any]:
    return {"layout": fmt.layout.value, "block_rows": fmt.block_rows,
            "block_cols": fmt.block_cols}


def format_from_dict(payload: dict[str, Any]) -> PhysicalFormat:
    try:
        layout = Layout(payload["layout"])
    except (KeyError, ValueError) as exc:
        raise SerializationError(f"bad format payload {payload!r}") from exc
    return PhysicalFormat(layout, payload.get("block_rows"),
                          payload.get("block_cols"))


def type_to_dict(mtype: MatrixType) -> dict[str, Any]:
    return {"dims": list(mtype.dims), "sparsity": mtype.sparsity}


def type_from_dict(payload: dict[str, Any]) -> MatrixType:
    return MatrixType(tuple(payload["dims"]), payload.get("sparsity", 1.0))


# ----------------------------------------------------------------------
# Graphs
# ----------------------------------------------------------------------
def graph_to_dict(graph: ComputeGraph) -> dict[str, Any]:
    vertices = []
    for v in graph.vertices:
        entry: dict[str, Any] = {"vid": v.vid, "name": v.name,
                                 "type": type_to_dict(v.mtype)}
        if v.is_source:
            entry["format"] = format_to_dict(v.format)
        else:
            entry["op"] = v.op.name
            entry["inputs"] = list(v.inputs)
            if v.param is not None:
                entry["param"] = v.param
        vertices.append(entry)
    return {"vertices": vertices,
            "outputs": [v.vid for v in graph.outputs]}


def graph_from_dict(payload: dict[str, Any]) -> ComputeGraph:
    graph = ComputeGraph()
    remap: dict[int, int] = {}
    for entry in payload["vertices"]:
        mtype = type_from_dict(entry["type"])
        if "op" in entry:
            vid = graph.add_op(
                entry["name"], atom_by_name(entry["op"]),
                tuple(remap[i] for i in entry["inputs"]),
                param=entry.get("param"))
        else:
            vid = graph.add_source(entry["name"], mtype,
                                   format_from_dict(entry["format"]))
        remap[entry["vid"]] = vid
    for out in payload.get("outputs", []):
        graph.mark_output(remap[out])
    return graph


# ----------------------------------------------------------------------
# Plans
# ----------------------------------------------------------------------
_IMPL_BY_NAME = {impl.name: impl for impl in DEFAULT_IMPLEMENTATIONS}
_TRANSFORM_BY_NAME = {t.name: t for t in DEFAULT_TRANSFORMS}


def plan_to_dict(plan: Plan) -> dict[str, Any]:
    """Serialize a plan (graph + annotation + provenance)."""
    annotation = plan.annotation
    payload = {
        "graph": graph_to_dict(plan.graph),
        "impls": {str(vid): impl.name
                  for vid, impl in annotation.impls.items()},
        "transforms": [
            {"src": e.src, "dst": e.dst, "arg_pos": e.arg_pos,
             "transform": t.name, "to_format": format_to_dict(fmt)}
            for e, (t, fmt) in annotation.transforms.items()],
        "optimizer": plan.optimizer,
        "optimize_seconds": plan.optimize_seconds,
    }
    if plan.pipeline is not None:
        payload["pipeline"] = plan.pipeline.to_dict()
    if plan.profile is not None:
        payload["profile"] = plan.profile.to_dict()
    return payload


def plan_from_dict(payload: dict[str, Any],
                   ctx: OptimizerContext) -> Plan:
    """Rebuild (and re-validate) a plan under the given context."""
    graph = graph_from_dict(payload["graph"])
    annotation = Annotation()
    for vid_text, impl_name in payload["impls"].items():
        impl = _IMPL_BY_NAME.get(impl_name)
        if impl is None and impl_name.startswith("fused_"):
            try:
                impl = fused_impl_by_name(impl_name)
            except (KeyError, ValueError):
                impl = None
        if impl is None:
            raise SerializationError(f"unknown implementation {impl_name!r}")
        annotation.impls[int(vid_text)] = impl
    for entry in payload["transforms"]:
        transform = _TRANSFORM_BY_NAME.get(entry["transform"])
        if transform is None:
            raise SerializationError(
                f"unknown transformation {entry['transform']!r}")
        edge = Edge(entry["src"], entry["dst"], entry["arg_pos"])
        annotation.transforms[edge] = (
            transform, format_from_dict(entry["to_format"]))
    plan = make_plan(graph, annotation, ctx,
                     payload.get("optimizer", "deserialized"),
                     payload.get("optimize_seconds", 0.0),
                     allow_infeasible=True)
    if "pipeline" in payload:
        plan = dataclasses.replace(
            plan, pipeline=PipelineReport.from_dict(payload["pipeline"]))
    if "profile" in payload:
        plan = dataclasses.replace(
            plan, profile=OptimizerProfile.from_dict(payload["profile"]))
    return plan


def plan_to_json(plan: Plan, indent: int | None = None) -> str:
    """Serialize a plan to a JSON string."""
    return json.dumps(plan_to_dict(plan), indent=indent)


def plan_from_json(text: str, ctx: OptimizerContext) -> Plan:
    """Deserialize a plan from a JSON string."""
    return plan_from_dict(json.loads(text), ctx)
