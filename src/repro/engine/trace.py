"""Pipeline-aware execution timelines for annotated plans.

The optimizer's objective, like the paper's, is the *sum* of stage costs
(``Cost(G')``).  A real engine overlaps independent stages, so the wall
clock is closer to the critical path of the stage DAG.  This module builds
an ASAP (as-soon-as-possible) schedule of a plan's stages, reports the
critical path, and renders a text Gantt chart — useful for understanding
where a plan's time goes and how much pipeline parallelism it exposes.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.annotation import Plan
from ..core.graph import VertexId
from ..core.registry import OptimizerContext


@dataclass(frozen=True)
class ScheduledStage:
    """One stage placed on the timeline."""

    name: str
    kind: str                 # "op" or "transform"
    vertex: VertexId          # consumer vertex
    start: float
    end: float
    on_critical_path: bool

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass
class Timeline:
    """An ASAP schedule of a plan's stages."""

    stages: list[ScheduledStage]
    sequential_seconds: float
    critical_path_seconds: float

    @property
    def parallelism(self) -> float:
        """How much pipeline overlap the plan exposes (>= 1.0)."""
        if self.critical_path_seconds <= 0:
            return 1.0
        return self.sequential_seconds / self.critical_path_seconds

    def critical_path(self) -> list[ScheduledStage]:
        return [s for s in self.stages if s.on_critical_path]

    def gantt(self, width: int = 60) -> str:
        """Text Gantt chart, one row per stage."""
        if not self.stages:
            return "(empty plan)"
        total = max(self.critical_path_seconds, 1e-12)
        lines = [f"timeline: {self.critical_path_seconds:.2f}s critical "
                 f"path, {self.sequential_seconds:.2f}s sequential "
                 f"(x{self.parallelism:.2f} overlap)"]
        for s in sorted(self.stages, key=lambda s: (s.start, s.end)):
            begin = int(round(width * s.start / total))
            length = max(1, int(round(width * s.duration / total)))
            bar = " " * begin + ("#" if s.on_critical_path else "-") * length
            marker = "*" if s.on_critical_path else " "
            lines.append(f"{s.name:36.36s}{marker}|{bar:<{width + 2}s}| "
                         f"{s.duration:8.2f}s")
        return "\n".join(lines)


def schedule(plan: Plan, ctx: OptimizerContext) -> Timeline:
    """ASAP-schedule the plan's stages and find the critical path.

    A vertex's transformation stages depend on their producer's operator
    stage; an operator stage depends on all of its transformation stages.
    Stage durations come from the plan's evaluated costs.
    """
    graph = plan.graph
    ready_at: dict[VertexId, float] = {}
    stages: list[tuple[str, str, VertexId, float, float]] = []
    # Backpointers for critical-path recovery: stage index -> parent index.
    parents: dict[int, int | None] = {}
    op_stage_index: dict[VertexId, int] = {}

    for vid in graph.topological_order():
        v = graph.vertex(vid)
        if v.is_source:
            ready_at[vid] = 0.0
            continue
        op_start = 0.0
        op_parent: int | None = None
        for edge in graph.in_edges(vid):
            producer = graph.vertex(edge.src)
            transform, _dst = plan.annotation.transforms[edge]
            duration = plan.cost.edge_seconds[edge]
            start = ready_at[edge.src]
            end = start + duration
            if duration > 0:
                idx = len(stages)
                stages.append((f"{producer.name}->{v.name}:{transform.name}",
                               "transform", vid, start, end))
                parents[idx] = op_stage_index.get(edge.src)
                candidate_parent = idx
            else:
                candidate_parent = op_stage_index.get(edge.src)
            if end >= op_start:
                op_start = end
                op_parent = candidate_parent
        impl = plan.annotation.impls[vid]
        duration = plan.cost.vertex_seconds[vid]
        idx = len(stages)
        stages.append((f"{v.name}:{impl.name}", "op", vid, op_start,
                       op_start + duration))
        parents[idx] = op_parent
        op_stage_index[vid] = idx
        ready_at[vid] = op_start + duration

    critical_end = max((s[4] for s in stages), default=0.0)
    # Walk back from the stage that finishes last.
    on_path: set[int] = set()
    if stages:
        idx = max(range(len(stages)), key=lambda i: stages[i][4])
        while idx is not None:
            on_path.add(idx)
            idx = parents.get(idx)

    scheduled = [
        ScheduledStage(name, kind, vid, start, end, i in on_path)
        for i, (name, kind, vid, start, end) in enumerate(stages)]
    sequential = sum(s.duration for s in scheduled)
    return Timeline(scheduled, sequential, critical_end)
