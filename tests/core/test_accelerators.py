"""Tests for the optional GPU catalog extension (paper Section 4.2)."""


from repro.cluster import ClusterConfig
from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.accelerators import (
    MMGpuSingle,
    MMGpuTileBroadcast,
    gpu_implementations,
)
from repro.core.atoms import MATMUL
from repro.core.formats import single, tiles
from repro.core.implementations import DEFAULT_IMPLEMENTATIONS

CPU_CLUSTER = ClusterConfig()
GPU_CLUSTER = ClusterConfig(gpus_per_worker=1)


def _gpu_ctx(cluster=GPU_CLUSTER):
    return OptimizerContext(
        cluster=cluster,
        implementations=DEFAULT_IMPLEMENTATIONS + gpu_implementations())


class TestHardwareAwareTyping:
    def test_rejected_without_gpus(self):
        """The paper's ⊥ when the hardware is absent."""
        mm = MMGpuSingle()
        types = (matrix(1000, 1000), matrix(1000, 1000))
        assert mm.output_format(types, (single(), single()),
                                CPU_CLUSTER) is None
        assert mm.output_format(types, (single(), single()),
                                GPU_CLUSTER) is not None

    def test_rejected_when_exceeding_gpu_ram(self):
        """The paper's "no enough GPU RAM" ⊥."""
        mm = MMGpuSingle()
        tiny_gpu = ClusterConfig(gpus_per_worker=1, gpu_ram_bytes=1_000_000)
        types = (matrix(2000, 2000), matrix(2000, 2000))  # 32 MB operands
        assert mm.output_format(types, (single(), single()),
                                tiny_gpu) is None

    def test_tile_variant_bounds_broadcast_side(self):
        mm = MMGpuTileBroadcast()
        types = (matrix(40_000, 40_000), matrix(40_000, 40_000))
        fmts = (tiles(1000), tiles(1000))
        # 12.8 GB broadcast side exceeds half of 16 GB GPU RAM.
        assert mm.output_format(types, fmts, GPU_CLUSTER) is None
        big_gpu = ClusterConfig(gpus_per_worker=1,
                                gpu_ram_bytes=64 * 1024**3)
        assert mm.output_format(types, fmts, big_gpu) is not None


class TestPlanning:
    def _graph(self, n=2000):
        g = ComputeGraph()
        a = g.add_source("A", matrix(n, n), single())
        b = g.add_source("B", matrix(n, n), single())
        g.add_op("AB", MATMUL, (a, b))
        return g

    def test_optimizer_picks_gpu_when_beneficial(self):
        g = self._graph()
        plan = optimize(g, _gpu_ctx())
        chosen = next(iter(plan.annotation.impls.values()))
        assert chosen.name.startswith("mm_gpu")

    def test_default_catalog_unchanged(self):
        assert len(DEFAULT_IMPLEMENTATIONS) == 38
        assert not any(i.name.startswith("mm_gpu")
                       for i in DEFAULT_IMPLEMENTATIONS)

    def test_cpu_cluster_never_uses_gpu_impls(self):
        g = self._graph()
        plan = optimize(g, _gpu_ctx(cluster=CPU_CLUSTER))
        assert not any(i.name.startswith("mm_gpu")
                       for i in plan.annotation.impls.values())

    def test_gpu_plan_cheaper_than_cpu_plan(self):
        g = self._graph(4000)
        cpu_cost = optimize(g, OptimizerContext()).total_seconds
        gpu_cost = optimize(g, _gpu_ctx()).total_seconds
        assert gpu_cost < cpu_cost
