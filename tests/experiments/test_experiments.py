"""Tests for the experiment harness and shape properties of key figures.

Full paper-scale figures run in benchmarks/; these tests exercise the
harness machinery plus the cheapest figures end to end and assert the
paper's qualitative findings (orderings, fail patterns).
"""

import math

import pytest

from repro.cluster import simsql_cluster
from repro.core import OptimizerContext
from repro.core.formats import col_strips, row_strips, single, tiles
from repro.experiments.figures import (
    EXPERIMENTS,
    ablation_sharing,
    fig01,
)
from repro.experiments.harness import (
    ExperimentTable,
    display_time,
    manual_plan,
    opt_time_cell,
)
from repro.workloads.chains import motivating_graph


class TestHarness:
    def test_table_rendering(self):
        t = ExperimentTable("figX", "demo", ["a", "b"])
        t.add_row("r1", "v1")
        t.add_row("r2", "v2")
        t.add_note("a note")
        text = t.render()
        assert "figX" in text and "v1" in text and "a note" in text

    def test_cell_lookup(self):
        t = ExperimentTable("figX", "demo", ["row", "value"])
        t.add_row("alpha", "42")
        assert t.cell("alpha", "value") == "42"
        with pytest.raises(KeyError):
            t.cell("beta", "value")

    def test_display_time(self):
        assert display_time(65) == "1:05"
        assert display_time(float("inf")) == "Fail"

    def test_opt_time_cell(self):
        class P:
            optimize_seconds = 3.2
        assert opt_time_cell(P()) == "(:03)"
        P.optimize_seconds = 83.0
        assert opt_time_cell(P()) == "(1:23)"

    def test_registry_complete(self):
        for fig in ("fig01", "fig05", "fig06", "fig07", "fig08", "fig09",
                    "fig10", "fig11", "fig12", "fig13",
                    "ablation_transform_costs", "ablation_sharing",
                    "ext_optimizer_scaling"):
            assert fig in EXPERIMENTS


class TestManualPlan:
    def test_manual_plan_builds_and_costs(self):
        graph = motivating_graph()
        ctx = OptimizerContext(cluster=simsql_cluster(5))
        names = [v.name for v in graph.inner_vertices]
        plan = manual_plan(graph, ctx, {
            names[0]: ("mm_strip_cross", (row_strips(10), col_strips(10))),
            names[1]: ("mm_bcast_left", (single(), col_strips(10_000))),
        })
        assert math.isfinite(plan.total_seconds)

    def test_manual_plan_rejects_untransformable(self):
        graph = motivating_graph()
        ctx = OptimizerContext(cluster=simsql_cluster(5))
        names = [v.name for v in graph.inner_vertices]
        with pytest.raises(ValueError):
            manual_plan(graph, ctx, {
                # matA is dense: no transformation reaches a sparse format.
                names[0]: ("mm_csr_bcast_dense",
                           (tiles(10), single())),
                names[1]: ("mm_bcast_left", (single(), col_strips(10_000))),
            })


class TestFig01Shape:
    """The motivating example reproduces the paper's headline finding."""

    @pytest.fixture(scope="class")
    def table(self):
        return fig01()

    def _seconds(self, cell: str) -> float:
        ours = cell.split(" [")[0]
        parts = [int(p) for p in ours.split(":")]
        while len(parts) < 3:
            parts.insert(0, 0)
        return parts[0] * 3600 + parts[1] * 60 + parts[2]

    def test_implementation_1_much_slower(self, table):
        t1 = self._seconds(table.cell("total", "Implementation 1"))
        t2 = self._seconds(table.cell("total", "Implementation 2"))
        assert t1 > 5 * t2  # paper: 19:11 vs 0:56 (~20x)

    def test_auto_matches_best_hand_plan(self, table):
        t2 = self._seconds(table.cell("total", "Implementation 2"))
        auto = self._seconds(table.cell("total", "Auto"))
        assert auto <= t2 + 1

    def test_transform_dominates_impl1_middle_phase(self, table):
        trans1 = self._seconds(table.cell("transform", "Implementation 1"))
        trans2 = self._seconds(table.cell("transform", "Implementation 2"))
        assert trans1 > trans2


class TestAblationSharing:
    def test_sharing_saves_cost(self):
        table = ablation_sharing()
        for row in table.rows:
            overhead = float(row[3].rstrip("x"))
            assert overhead >= 1.0
