"""Executor coverage for the less-common execution paths: column-split
softmax, shuffle reductions, forced transformations, sparse storage
round trips through whole plans."""

import numpy as np
import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix
from repro.core.atoms import (
    COL_SUMS,
    MATMUL,
    ROW_SUMS,
    SOFTMAX,
)
from repro.core.formats import (
    col_strips,
    csr_strips,
    row_strips,
    single,
    tiles,
)
from repro.engine import Executor, execute_plan
from repro.experiments.harness import manual_plan

RNG = np.random.default_rng(17)
CTX = OptimizerContext()


def _softmax_ref(a):
    e = np.exp(a - a.max(axis=1, keepdims=True))
    return e / e.sum(axis=1, keepdims=True)


class TestColumnSplitSoftmax:
    def test_softmax_blocked_over_tiles(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(40, 60), tiles(20))
        g.add_op("S", SOFTMAX, (a,))
        plan = manual_plan(g, CTX, {"S": ("softmax_blocked", (tiles(20),))})
        data = RNG.standard_normal((40, 60))
        result = execute_plan(plan, {"A": data}, CTX)
        assert np.allclose(result.output(), _softmax_ref(data))

    def test_softmax_blocked_over_col_strips(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(30, 90), col_strips(30))
        g.add_op("S", SOFTMAX, (a,))
        plan = manual_plan(g, CTX,
                           {"S": ("softmax_blocked", (col_strips(30),))})
        data = RNG.standard_normal((30, 90))
        result = execute_plan(plan, {"A": data}, CTX)
        assert np.allclose(result.output(), _softmax_ref(data))


class TestShuffleReductions:
    @pytest.mark.parametrize("op,impl,axis", [
        (ROW_SUMS, "row_sums_shuffle", 1),
        (COL_SUMS, "col_sums_shuffle", 0),
    ])
    def test_reduction_over_tiles(self, op, impl, axis):
        g = ComputeGraph()
        a = g.add_source("A", matrix(50, 70), tiles(20))
        g.add_op("R", op, (a,))
        plan = manual_plan(g, CTX, {"R": (impl, (tiles(20),))})
        data = RNG.standard_normal((50, 70))
        result = execute_plan(plan, {"A": data}, CTX)
        expected = data.sum(axis=axis, keepdims=True)
        assert np.allclose(result.output(), expected)

    def test_row_sums_local_over_strips(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(50, 70), row_strips(10))
        g.add_op("R", ROW_SUMS, (a,))
        plan = manual_plan(g, CTX,
                           {"R": ("row_sums_local", (row_strips(10),))})
        data = RNG.standard_normal((50, 70))
        result = execute_plan(plan, {"A": data}, CTX)
        assert np.allclose(result.output(),
                           data.sum(axis=1, keepdims=True))


class TestForcedTransformPaths:
    @pytest.mark.parametrize("src,need", [
        (row_strips(10), tiles(25)),
        (tiles(10), col_strips(25)),
        (single(), row_strips(25)),
        (col_strips(10), single()),
    ])
    def test_matmul_through_each_transform_family(self, src, need):
        g = ComputeGraph()
        a = g.add_source("A", matrix(50, 50), src)
        b = g.add_source("B", matrix(50, 50), single())
        g.add_op("AB", MATMUL, (a, b))
        impl = {"row_strip": "mm_bcast_right",
                "single": "mm_local_single",
                "tile": None, "col_strip": None}
        if need == tiles(25):
            spec = ("mm_tile_shuffle", (tiles(25), tiles(25)))
        elif need == col_strips(25):
            spec = ("mm_bcast_left", (single(), col_strips(25)))
        elif need == row_strips(25):
            spec = ("mm_bcast_right", (row_strips(25), single()))
        else:
            spec = ("mm_local_single", (single(), single()))
        plan = manual_plan(g, CTX, {"AB": spec})
        x = RNG.standard_normal((50, 50))
        y = RNG.standard_normal((50, 50))
        result = execute_plan(plan, {"A": x, "B": y}, CTX)
        assert np.allclose(result.output(), x @ y)


class TestSparseThroughPlans:
    def test_sparse_input_stays_sparse_through_map(self):
        from repro.core.atoms import RELU
        g = ComputeGraph()
        a = g.add_source("A", matrix(60, 60, 0.05), csr_strips(20))
        g.add_op("R", RELU, (a,))
        plan = manual_plan(g, CTX, {"R": ("map_relu", (csr_strips(20),))})
        dense = RNG.standard_normal((60, 60)) * \
            (RNG.random((60, 60)) < 0.05)
        executor = Executor(plan, CTX)
        result = executor.run({"A": dense})
        assert np.allclose(result.output(), np.maximum(dense, 0))
