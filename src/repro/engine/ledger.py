"""Traffic/compute ledger: the simulated clock of the engine.

Every relational operation (and every plan stage during pure simulation)
records its cost features here; the ledger converts them to seconds through
the same regression cost model the optimizer uses, and enforces per-worker
memory limits — the analogue of the paper's clusters crashing with "too much
intermediate data".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.features import CostFeatures
from ..cost.model import CostModel, CostWeights, DEFAULT_WEIGHTS
from ..cluster import ClusterConfig


class EngineFailure(RuntimeError):
    """The (simulated) engine crashed — the paper's "Fail" entries."""

    def __init__(self, stage: str, reason: str) -> None:
        super().__init__(f"stage {stage!r} failed: {reason}")
        self.stage = stage
        self.reason = reason


@dataclass
class StageRecord:
    """One executed/simulated stage with its features and charged seconds."""

    name: str
    features: CostFeatures
    seconds: float


@dataclass
class TrafficLedger:
    """Accumulates per-stage charges into a simulated wall clock."""

    cluster: ClusterConfig
    weights: CostWeights = DEFAULT_WEIGHTS
    stages: list[StageRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._model = CostModel(self.cluster, self.weights)

    # ------------------------------------------------------------------
    def charge(self, name: str, features: CostFeatures) -> float:
        """Record a stage; returns its seconds.  Raises on memory overflow."""
        if features.max_worker_bytes > self.cluster.ram_bytes:
            raise EngineFailure(
                name,
                f"needs {features.max_worker_bytes / 1024**3:.1f} GiB of RAM "
                f"on one worker, only {self.cluster.ram_bytes / 1024**3:.1f} "
                "GiB available")
        if features.spill_bytes > self.cluster.disk_bytes:
            raise EngineFailure(
                name,
                f"needs {features.spill_bytes / 1e9:.0f} GB of spill space "
                f"per worker, only {self.cluster.disk_bytes / 1e9:.0f} GB of "
                "local disk available (too much intermediate data)")
        seconds = self._model.seconds(features)
        self.stages.append(StageRecord(name, features, seconds))
        return seconds

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Simulated wall-clock total."""
        return sum(s.seconds for s in self.stages)

    @property
    def total_features(self) -> CostFeatures:
        total = CostFeatures()
        for s in self.stages:
            total = total + s.features
        return total

    def breakdown(self) -> str:
        """Per-stage report for debugging and examples."""
        lines = [f"{'stage':40s} {'seconds':>10s} {'net MB':>10s} {'tuples':>10s}"]
        for s in self.stages:
            lines.append(
                f"{s.name:40s} {s.seconds:10.3f} "
                f"{s.features.network_bytes / 1e6:10.1f} "
                f"{s.features.tuples:10.0f}")
        lines.append(f"{'TOTAL':40s} {self.total_seconds:10.3f}")
        return "\n".join(lines)
