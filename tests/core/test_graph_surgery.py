"""Tests for the compute-graph surgery helpers used by rewrite passes."""

import pytest

from repro.core.atoms import ADD, MATMUL, RELU, TRANSPOSE
from repro.core.formats import single
from repro.core.graph import ComputeGraph, GraphError
from repro.core.types import matrix


def _diamond():
    """A -> (AB, AC) -> sum, with B and C structurally different."""
    g = ComputeGraph()
    a = g.add_source("A", matrix(10, 10), single())
    b = g.add_source("B", matrix(10, 10), single())
    ab = g.add_op("AB", MATMUL, (a, b))
    ac = g.add_op("AC", MATMUL, (a, a))
    s = g.add_op("S", ADD, (ab, ac))
    g.mark_output(s)
    return g, a, b, ab, ac, s


class TestReplaceUses:
    def test_redirects_consumers(self):
        g, a, b, ab, ac, s = _diamond()
        n = g.replace_uses(ab, ac)
        assert n == 1
        assert g.vertex(s).inputs == (ac, ac)
        assert g.out_degree(ab) == 0
        assert g.out_degree(ac) == 2

    def test_shape_mismatch_rejected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        t = g.add_op("T", TRANSPOSE, (a,))
        wide = g.add_source("W", matrix(10, 20), single())
        with pytest.raises(GraphError):
            g.replace_uses(t, wide)

    def test_cycle_rejected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        r1 = g.add_op("R1", RELU, (a,))
        r2 = g.add_op("R2", RELU, (r1,))
        # Replacing uses of r1 with r2 would make r2 its own ancestor.
        with pytest.raises(GraphError):
            g.replace_uses(r1, r2)

    def test_output_marking_moves(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        r1 = g.add_op("R1", RELU, (a,))
        r2 = g.add_op("R2", RELU, (a,))
        g.mark_output(r1)
        g.replace_uses(r1, r2)
        assert g.is_output(r2)
        assert not g.is_output(r1)

    def test_duplicate_argument_edges_both_redirected(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        t = g.add_op("T", TRANSPOSE, (a,))
        tt = g.add_op("TT", TRANSPOSE, (t,))
        both = g.add_op("BOTH", ADD, (tt, tt))
        g.mark_output(both)
        assert g.replace_uses(tt, a) == 2
        assert g.vertex(both).inputs == (a, a)


class TestRemoveAndPrune:
    def test_remove_dead_vertex(self):
        g, a, b, ab, ac, s = _diamond()
        g.replace_uses(ab, ac)
        g.remove_vertex(ab)
        assert ab not in g.vertex_ids

    def test_remove_live_vertex_rejected(self):
        g, a, b, ab, ac, s = _diamond()
        with pytest.raises(GraphError):
            g.remove_vertex(ab)

    def test_remove_declared_output_rejected(self):
        g, *_ , s = _diamond()
        with pytest.raises(GraphError):
            g.remove_vertex(s)

    def test_pruned_drops_dead_subtrees(self):
        g, a, b, ab, ac, s = _diamond()
        g.replace_uses(ab, ac)
        pruned = g.pruned()
        names = {v.name for v in pruned.vertices}
        assert "AB" not in names and "B" not in names
        assert {"A", "AC", "S"} <= names

    def test_pruned_without_outputs_is_identity(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 10), single())
        g.add_op("R", RELU, (a,))
        assert g.pruned() is g


class TestCompacted:
    def test_ids_dense_and_topological(self):
        g, a, b, ab, ac, s = _diamond()
        g.replace_uses(ab, ac)
        g.remove_vertex(ab)
        out, mapping = g.compacted()
        assert tuple(out.vertex_ids) == tuple(range(len(out)))
        order = {vid: i for i, vid in enumerate(out.topological_order())}
        for v in out.inner_vertices:
            assert all(order[src] < order[v.vid] for src in v.inputs)
        out.validate()

    def test_types_reinferred(self):
        g, a, b, ab, ac, s = _diamond()
        out, mapping = g.compacted()
        for old, new in mapping.items():
            assert g.vertex(old).mtype == out.vertex(new).mtype

    def test_argument_order_preserved(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(10, 20), single())
        b = g.add_source("B", matrix(20, 30), single())
        ab = g.add_op("AB", MATMUL, (a, b))
        g.mark_output(ab)
        out, mapping = g.compacted()
        v = out.vertex(mapping[ab])
        assert v.inputs == (mapping[a], mapping[b])

    def test_outputs_remapped(self):
        g, *_, s = _diamond()
        out, mapping = g.compacted()
        assert out.is_output(mapping[s])
