"""Optimizer facade.

Chooses the right algorithm for a compute graph: the linear-time tree DP
(paper Algorithm 3) when the graph is tree shaped, the frontier algorithm
(paper Algorithm 4) for general DAGs, or brute force (paper Algorithm 2) on
request.
"""

from __future__ import annotations

import dataclasses

from .annotation import Plan
from .brute import optimize_brute
from .frontier import FrontierStats, optimize_dag
from .graph import ComputeGraph
from .registry import OptimizerContext
from .tree_dp import optimize_tree

ALGORITHMS = ("auto", "tree", "frontier", "brute")


def _context_for(graph: ComputeGraph, ctx: OptimizerContext
                 ) -> OptimizerContext:
    """Extend the context's format catalog with the graph's load formats.

    Input matrices may arrive in formats outside the search catalog (e.g.
    width-10 strips in the Section 2.1 example).  Adding them lets the
    search use implementations on the loaded formats directly instead of
    forcing a transformation first.
    """
    extra = [s.format for s in graph.sources if s.format not in ctx.formats]
    if not extra:
        return ctx
    seen = dict.fromkeys(tuple(ctx.formats) + tuple(extra))
    return dataclasses.replace(ctx, formats=tuple(seen))


def optimize(graph: ComputeGraph, ctx: OptimizerContext | None = None,
             algorithm: str = "auto",
             timeout_seconds: float | None = None,
             stats: FrontierStats | None = None,
             max_states: int | None = None) -> Plan:
    """Produce the cost-optimal, type-correct annotated plan for ``graph``.

    ``algorithm`` is one of ``auto`` (tree DP when tree shaped, else the
    frontier algorithm), ``tree``, ``frontier`` or ``brute``.
    ``timeout_seconds`` only applies to brute force; ``max_states``
    beam-prunes the frontier algorithm's class tables (None = exact).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ALGORITHMS}")
    if ctx is None:
        ctx = OptimizerContext()
    ctx = _context_for(graph, ctx)
    if algorithm == "auto":
        algorithm = "tree" if graph.is_tree_shaped() else "frontier"
    if algorithm == "tree":
        return optimize_tree(graph, ctx)
    if algorithm == "frontier":
        return optimize_dag(graph, ctx, stats=stats, max_states=max_states)
    return optimize_brute(graph, ctx, timeout_seconds=timeout_seconds)
