"""Tests for matrix types and scalar sparsity propagation."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.types import (
    ENTRY_BYTES,
    MatrixType,
    intersect_sparsity,
    matmul_sparsity,
    matrix,
    union_sparsity,
    vector,
)


class TestMatrixType:
    def test_basic_accessors(self):
        t = matrix(100, 200)
        assert t.rows == 100
        assert t.cols == 200
        assert t.ndim == 2
        assert t.entries == 20_000
        assert t.dense_bytes == 20_000 * ENTRY_BYTES

    def test_vector_is_single_row(self):
        v = vector(50)
        assert v.rows == 1
        assert v.cols == 50
        assert v.entries == 50

    def test_default_sparsity_is_dense(self):
        assert matrix(3, 3).sparsity == 1.0
        assert matrix(3, 3).nnz == 9

    def test_nnz_scales_with_sparsity(self):
        t = matrix(100, 100, sparsity=0.25)
        assert t.nnz == pytest.approx(2500)

    def test_rejects_empty_dims(self):
        with pytest.raises(ValueError):
            MatrixType(())

    def test_rejects_nonpositive_extent(self):
        with pytest.raises(ValueError):
            matrix(0, 5)
        with pytest.raises(ValueError):
            matrix(5, -1)

    def test_rejects_bad_sparsity(self):
        with pytest.raises(ValueError):
            matrix(2, 2, sparsity=1.5)
        with pytest.raises(ValueError):
            matrix(2, 2, sparsity=-0.1)

    def test_transposed(self):
        t = matrix(3, 7, sparsity=0.5).transposed()
        assert (t.rows, t.cols) == (7, 3)
        assert t.sparsity == 0.5

    def test_transpose_rejects_higher_rank(self):
        with pytest.raises(ValueError):
            MatrixType((2, 3, 4)).transposed()

    def test_with_sparsity(self):
        t = matrix(4, 4).with_sparsity(0.1)
        assert t.sparsity == 0.1
        assert t.dims == (4, 4)

    def test_sparse_bytes_smaller_when_sparse(self):
        t = matrix(1000, 1000, sparsity=0.01)
        assert t.sparse_bytes < t.dense_bytes
        assert not t.is_dense

    def test_dense_preferred_when_dense(self):
        assert matrix(100, 100).is_dense

    def test_hashable_and_equal(self):
        assert matrix(2, 3) == matrix(2, 3)
        assert hash(matrix(2, 3)) == hash(matrix(2, 3))
        assert matrix(2, 3) != matrix(2, 3, sparsity=0.5)


class TestSparsityPropagation:
    def test_matmul_dense_stays_dense(self):
        assert matmul_sparsity(matrix(10, 10), matrix(10, 10)) == 1.0

    def test_matmul_zero(self):
        assert matmul_sparsity(matrix(10, 10, 0.0), matrix(10, 10)) == 0.0

    def test_matmul_sparse_densifies_with_depth(self):
        # A long inner dimension fills in the output.
        shallow = matmul_sparsity(matrix(10, 10, 0.1), matrix(10, 10, 0.1))
        deep = matmul_sparsity(matrix(10, 10_000, 0.1),
                               matrix(10_000, 10, 0.1))
        assert deep > shallow
        assert deep == pytest.approx(1.0, abs=1e-6)

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_union_bounds(self, a, b):
        u = union_sparsity(a, b)
        assert max(a, b) - 1e-12 <= u <= 1.0

    @given(st.floats(0, 1), st.floats(0, 1))
    def test_intersection_bounds(self, a, b):
        i = intersect_sparsity(a, b)
        assert 0.0 <= i <= min(a, b) + 1e-12

    @given(st.integers(1, 10_000), st.floats(0, 1), st.floats(0, 1))
    def test_matmul_sparsity_in_unit_interval(self, k, sa, sb):
        s = matmul_sparsity(matrix(5, k, sa), matrix(k, 5, sb))
        assert 0.0 <= s <= 1.0
        assert math.isfinite(s)

    @given(st.integers(1, 1000), st.floats(0.0001, 1), st.floats(0.0001, 1))
    def test_matmul_sparsity_monotone_in_inputs(self, k, sa, sb):
        lo = matmul_sparsity(matrix(5, k, sa * 0.5), matrix(k, 5, sb))
        hi = matmul_sparsity(matrix(5, k, sa), matrix(k, 5, sb))
        assert lo <= hi + 1e-12
