"""Experiment harness: table rendering and common planning helpers.

Every experiment in :mod:`repro.experiments.figures` produces an
:class:`ExperimentTable` whose rows mirror the corresponding table/figure of
the paper.  Times are *simulated seconds* formatted H:MM:SS as in the paper;
optimizer times are real wall-clock seconds of this machine.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..core.annotation import Plan
from ..core.registry import OptimizerContext
from ..engine.executor import format_hms
from ..service.planner import PlannerService


@dataclass
class ExperimentTable:
    """One paper table/figure reproduction."""

    experiment_id: str
    title: str
    headers: list[str]
    rows: list[list[str]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)

    def add_row(self, *cells: str) -> None:
        self.rows.append([str(c) for c in cells])

    def add_note(self, note: str) -> None:
        self.notes.append(note)

    def cell(self, row_label: str, column: str) -> str:
        """Look up one cell by its row label (first column) and header."""
        col = self.headers.index(column)
        for row in self.rows:
            if row[0] == row_label:
                return row[col]
        raise KeyError(f"no row labelled {row_label!r}")

    def render(self) -> str:
        """Markdown-style rendering, aligned for terminals."""
        widths = [len(h) for h in self.headers]
        for row in self.rows:
            for i, cell in enumerate(row):
                widths[i] = max(widths[i], len(cell))

        def line(cells: list[str]) -> str:
            return "| " + " | ".join(
                c.ljust(w) for c, w in zip(cells, widths)) + " |"

        out = [f"## {self.experiment_id}: {self.title}",
               line(self.headers),
               "|" + "|".join("-" * (w + 2) for w in widths) + "|"]
        out.extend(line(row) for row in self.rows)
        out.extend(f"  note: {n}" for n in self.notes)
        return "\n".join(out)


def display_time(seconds: float) -> str:
    """Paper-style table cell: H:MM:SS, or Fail for an infeasible run."""
    if not math.isfinite(seconds):
        return "Fail"
    return format_hms(seconds)


def plan_cell(plan: Plan) -> str:
    """Table cell for a plan's simulated running time."""
    return display_time(plan.total_seconds)


def opt_time_cell(plan: Plan) -> str:
    """Table cell for the (real) optimization time, paper style ``(:SS)``."""
    secs = plan.optimize_seconds
    if secs >= 60:
        return f"({int(secs // 60):d}:{int(secs % 60):02d})"
    return f"(:{int(round(secs)):02d})"


def auto_cell(plan: Plan) -> str:
    """Combined runtime + optimization-time cell, e.g. ``12:06 (:02)``."""
    return f"{plan_cell(plan)} {opt_time_cell(plan)}"


def fresh_context(cluster, **kwargs) -> OptimizerContext:
    """A new optimizer context for one experiment configuration."""
    return OptimizerContext(cluster=cluster, **kwargs)


_SERVICE: PlannerService | None = None


def planner_service() -> PlannerService:
    """The process-wide planner service shared by the experiment suite.

    Experiments plan through one service so repeated configurations —
    re-running a figure, the plan-cache benchmark replaying fig05/09/10
    workloads, overlapping ablation sweeps — hit the plan cache instead of
    re-searching.  Fig 13 bypasses it on purpose: it *measures* optimizer
    runtimes, which a cache would fake.
    """
    global _SERVICE
    if _SERVICE is None:
        _SERVICE = PlannerService(cache_capacity=512)
    return _SERVICE


def reset_planner_service() -> PlannerService:
    """Fresh shared service (cold cache); returns the new instance."""
    global _SERVICE
    _SERVICE = None
    return planner_service()


def plan_with_service(graph, ctx: OptimizerContext, *,
                      algorithm: str = "auto",
                      max_states: int | None = None,
                      rewrites="none") -> Plan:
    """Optimize one experiment configuration through the shared service."""
    return planner_service().optimize(graph, ctx, algorithm=algorithm,
                                      max_states=max_states,
                                      rewrites=rewrites)


def manual_plan(graph, ctx: OptimizerContext,
                spec: dict[str, tuple[str, tuple]],
                name: str = "manual") -> Plan:
    """Construct a plan from explicit per-vertex choices.

    ``spec`` maps each inner vertex's name to ``(implementation name,
    input formats)``; the needed edge transformations are looked up
    automatically.  Used to reproduce the paper's hand-specified
    implementations (e.g. Fig 1's two alternatives).
    """
    from ..core.annotation import Annotation, make_plan
    from ..core.implementations import DEFAULT_IMPLEMENTATIONS

    by_name = {impl.name: impl for impl in DEFAULT_IMPLEMENTATIONS}
    annotation = Annotation()
    formats = {v.vid: v.format for v in graph.sources}
    for v in graph.inner_vertices:
        impl_name, in_fmts = spec[v.name]
        impl = by_name[impl_name]
        in_types = tuple(graph.vertex(p).mtype for p in v.inputs)
        for edge, need in zip(graph.in_edges(v.vid), in_fmts):
            producer = graph.vertex(edge.src)
            choice = ctx.transform_choice(producer.mtype, formats[edge.src],
                                          need)
            if choice is None:
                raise ValueError(
                    f"{name}: no transformation {formats[edge.src]} -> "
                    f"{need} for edge into {v.name!r}")
            annotation.transforms[edge] = (choice[0], need)
        out_fmt = impl.output_format(in_types, tuple(in_fmts), ctx.cluster)
        if out_fmt is None:
            raise ValueError(
                f"{name}: {impl_name} rejects {list(map(str, in_fmts))} "
                f"at vertex {v.name!r}")
        annotation.impls[v.vid] = impl
        formats[v.vid] = out_fmt
    return make_plan(graph, annotation, ctx, name, allow_infeasible=True)
