"""Simulated human programmers (paper Experiment 4, Fig 8).

The paper recruited three ML PhD students with low / medium / high
distributed-ML expertise, handed them a 21-page labeling handbook, and
translated their compute-graph labelings into SimSQL plans.  The two less
experienced users' first attempts crashed and had to be re-designed.

Here each user is a rule-based planner whose rules reflect their expertise:

* **low** (ML applications): thinks like a single-machine practitioner —
  keeps matrices whole ("single tuple") far beyond what the engine can
  materialize, so the first labeling crashes; the redesign falls back to
  the handbook's default 1000 x 1000 tiling everywhere.
* **medium** (federated learning): knows to partition the really big
  matrices but still demands whole activations of several GB, which also
  crashes; the redesign moves to coarse 2000 x 2000 tiles with broadcast
  joins for small sides.
* **high** (high-performance distributed ML): broadcast joins for small
  sides, large tiles for huge multiplies, strip layouts where they help —
  close to what the optimizer finds, as in the paper (23:58 vs 23:46).

:func:`plan_user_with_retry` reproduces the crash-and-redesign loop: if a
user's first labeling demands an engine-infeasible format or the plan would
die at runtime, the user replans at safety level 1 and the result carries
the asterisk of Fig 8.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..core.annotation import Plan
from ..core.formats import (
    PhysicalFormat,
    col_strips,
    row_strips,
    single,
    tiles,
)
from ..core.graph import ComputeGraph
from ..core.registry import OptimizerContext
from ..core.types import MatrixType
from .common import GiB, RulePlanner, matches

EXPERTISE_LEVELS = ("low", "medium", "high")
_SMALL = 0.25 * GiB
_HUGE = 32 * GiB


class UserPlanner(RulePlanner):
    """One simulated programmer with a given distributed-ML expertise.

    ``safety`` is the redesign level: 0 is the user's first attempt, 1 the
    conservative redesign after a crash.
    """

    def __init__(self, expertise: str, safety: int = 0) -> None:
        if expertise not in EXPERTISE_LEVELS:
            raise ValueError(f"expertise must be one of {EXPERTISE_LEVELS}")
        self.expertise = expertise
        self.safety = safety
        self.name = f"user_{expertise}" + ("_redesign" if safety else "")

    # ------------------------------------------------------------------
    def _single_limit(self) -> float:
        """Largest matrix the user wants to keep whole.

        First attempts (safety 0) of the less-experienced users demand
        whole matrices far beyond what the engine can materialize in one
        tuple — the labelings the paper reports as crashing.
        """
        if self.safety:
            return (2 if self.expertise == "low" else 1) * GiB
        if self.expertise == "low":
            return 64 * GiB
        if self.expertise == "medium":
            return 8 * GiB
        return _SMALL

    def _tile_size(self) -> int:
        return 2000 if (self.expertise == "medium" and self.safety) else 1000

    def desired_format(self, mtype: MatrixType) -> PhysicalFormat:
        if self.expertise == "high":
            if mtype.dense_bytes <= _SMALL:
                return single()
            if mtype.rows >= 4 * mtype.cols:
                return row_strips(1000)
            if mtype.cols >= 4 * mtype.rows:
                return col_strips(1000)
            return tiles(1000)
        if mtype.dense_bytes <= self._single_limit():
            return single()
        return tiles(self._tile_size())

    # ------------------------------------------------------------------
    def demands_infeasible_format(self, graph: ComputeGraph) -> bool:
        """Whether this labeling asks for a format the engine cannot build
        (e.g. a multi-GB matrix as one tuple) for any matrix in the graph."""
        return any(not self.desired_format(v.mtype).admits(v.mtype)
                   for v in graph.vertices)

    # ------------------------------------------------------------------
    def preference(self, vertex, in_types, impl_name, in_fmts, out_fmt,
                   ctx: OptimizerContext) -> float:
        score = 0.0
        for t, f in zip(in_types, in_fmts):
            score += matches(f, self.desired_format(t))
        score += matches(out_fmt, self.desired_format(vertex.mtype))

        if vertex.op.name == "matmul":
            small = min(t.dense_bytes for t in in_types)
            big = max(max(t.dense_bytes for t in in_types),
                      vertex.mtype.dense_bytes)
            if self.expertise == "low":
                # Only knows the textbook tile multiply.
                if impl_name == "mm_tile_shuffle":
                    score += 1.0
            elif self.expertise == "medium":
                # Broadcasts small matrices; the redesign (after the crash)
                # extends broadcasting to mid-size activations too.
                bcast_limit = 2 * GiB if self.safety else _SMALL
                if impl_name in ("mm_bcast_left", "mm_bcast_right",
                                 "mm_local_single") and small <= _SMALL:
                    score += 2.0
                elif impl_name == "mm_tile_bcast" and small <= bcast_limit:
                    score += 1.0
                elif impl_name in ("mm_tile_shuffle", "mm_tile_bcast"):
                    score += 0.75
            else:
                # High expertise mirrors the hand-written expert, plus the
                # pipelined strip plans.
                if impl_name in ("mm_bcast_left", "mm_bcast_right",
                                 "mm_csr_bcast_dense", "mm_local_single",
                                 "mm_sparse_local") and small <= _SMALL:
                    score += 2.0
                elif impl_name == "mm_strip_cross":
                    score += 1.5
                elif impl_name in ("mm_tile_shuffle", "mm_tile_bcast"):
                    score += 0.5
                    if big >= _HUGE:
                        score += sum(1.0 for f in in_fmts
                                     if f.block_rows == 2000)
        return score


@dataclass(frozen=True)
class UserPlanResult:
    """A user's final plan, with the crashed-first-attempt flag of Fig 8."""

    plan: Plan
    retried: bool

    @property
    def display_suffix(self) -> str:
        return "*" if self.retried else ""


def plan_user_with_retry(graph: ComputeGraph, ctx: OptimizerContext,
                         expertise: str) -> UserPlanResult:
    """Plan as the given user; on a crashing plan, redesign once.

    Mirrors the paper: "The first attempts by the programmers with 'low'
    and 'medium' distributed ML experiences crashed, and we asked them to
    update the labeling accordingly."
    """
    first = UserPlanner(expertise)
    if not first.demands_infeasible_format(graph):
        attempt = first.plan(graph, ctx)
        if math.isfinite(attempt.total_seconds):
            return UserPlanResult(attempt, retried=False)
    redesign = UserPlanner(expertise, safety=1).plan(graph, ctx)
    return UserPlanResult(redesign, retried=True)
