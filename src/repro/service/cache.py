"""Parameterized plan cache with LRU + cost-aware eviction.

Entries are keyed by the request's **structural key** (see
:mod:`repro.core.fingerprint`); each entry holds one plan per concrete
**parameter binding**.  Structurally identical requests therefore share an
entry — the recency and cost bookkeeping that drives eviction operates on
the structure, which is what repeats across parameter sweeps and tenants.

Eviction is LRU *tempered by replacement cost*: among the least recently
used entries, the victim is the one that is cheapest to recompute and has
paid for itself least (``optimize_seconds * (1 + hits)``).  A plan that
took a ten-second frontier search to produce survives a crowd of cheap
tree-DP plans even when it was touched slightly longer ago.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Iterator

from ..core.annotation import Plan
from ..core.fingerprint import Fingerprint

__all__ = ["PlanCache"]


class _Entry:
    """All cached plans sharing one structural key."""

    __slots__ = ("plans", "hits", "optimize_seconds")

    def __init__(self) -> None:
        self.plans: dict[str, Plan] = {}
        self.hits = 0
        #: Wall-clock seconds of the most expensive cold optimization that
        #: produced a plan in this entry — the replacement cost a wrong
        #: eviction would re-pay.
        self.optimize_seconds = 0.0


class PlanCache:
    """Bounded plan cache keyed by ``(structural, params)`` fingerprints.

    ``capacity`` bounds the total number of cached *plans* (parameter
    bindings), not structural entries.  ``eviction_sample`` is how many
    least-recently-used entries compete on replacement cost when a victim
    is needed; 1 degenerates to plain LRU.  Thread safe.
    """

    def __init__(self, capacity: int = 256, eviction_sample: int = 8) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        if eviction_sample < 1:
            raise ValueError("eviction_sample must be >= 1, "
                             f"got {eviction_sample}")
        self.capacity = capacity
        self.eviction_sample = eviction_sample
        self._lock = threading.RLock()
        self._entries: OrderedDict[str, _Entry] = OrderedDict()
        self._plans = 0
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        """Number of cached plans across all structural entries."""
        with self._lock:
            return self._plans

    def get(self, fp: Fingerprint) -> Plan | None:
        """Look up the plan for ``fp``, refreshing recency on hit."""
        with self._lock:
            entry = self._entries.get(fp.structural)
            plan = entry.plans.get(fp.params) if entry is not None else None
            if plan is None:
                self.misses += 1
                return None
            entry.hits += 1
            self.hits += 1
            self._entries.move_to_end(fp.structural)
            return plan

    def put(self, fp: Fingerprint, plan: Plan,
            optimize_seconds: float = 0.0) -> int:
        """Insert ``plan`` under ``fp``; returns how many plans it evicted.

        ``optimize_seconds`` is the wall-clock cost of the cold
        optimization that produced ``plan``; it feeds the cost-aware
        eviction score.
        """
        with self._lock:
            entry = self._entries.get(fp.structural)
            if entry is None:
                entry = self._entries[fp.structural] = _Entry()
            if fp.params not in entry.plans:
                self._plans += 1
            entry.plans[fp.params] = plan
            entry.optimize_seconds = max(entry.optimize_seconds,
                                         optimize_seconds)
            self._entries.move_to_end(fp.structural)
            return self._evict()

    def _evict(self) -> int:
        evicted = 0
        while self._plans > self.capacity and len(self._entries) > 1:
            candidates = []
            for key in self._entries:          # iterates LRU-first
                if key == next(reversed(self._entries)):
                    break                      # never evict the newest
                candidates.append(key)
                if len(candidates) >= self.eviction_sample:
                    break
            victim = min(candidates,
                         key=lambda k: self._score(self._entries[k]))
            entry = self._entries.pop(victim)
            self._plans -= len(entry.plans)
            evicted += len(entry.plans)
            self.evictions += len(entry.plans)
        return evicted

    @staticmethod
    def _score(entry: _Entry) -> float:
        """Cost-aware eviction score: lower evicts first."""
        return entry.optimize_seconds * (1 + entry.hits)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._plans = 0

    def keys(self) -> Iterator[str]:
        """Structural keys, least recently used first (snapshot)."""
        with self._lock:
            return iter(list(self._entries))

    def stats(self) -> dict[str, int]:
        """Lifetime counters plus current occupancy."""
        with self._lock:
            return {
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "plans": self._plans,
                "entries": len(self._entries),
                "capacity": self.capacity,
            }
