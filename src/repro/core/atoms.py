"""Atomic computations (the set :math:`\\mathcal{A}` of the paper).

An atomic computation is an abstract operation such as "matrix multiply",
with an input arity ``n`` and a type-specification function
``f : M^n -> M ∪ {⊥}`` (paper Section 3).  Here ``None`` plays the role of
:math:`\\bot`: the operation cannot accept the given input types.

The default catalog :data:`DEFAULT_ATOMS` contains 16 operations, matching
the paper's prototype inventory.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from .types import (
    MatrixType,
    intersect_sparsity,
    matmul_sparsity,
    union_sparsity,
)

TypeFn = Callable[..., MatrixType | None]


@dataclass(frozen=True)
class AtomicOp:
    """An abstract matrix operation: name, arity and type function."""

    name: str
    arity: int
    _type_fn: TypeFn

    def out_type(self, *in_types: MatrixType) -> MatrixType | None:
        """The paper's ``a.f``: output type, or None (⊥) if inapplicable."""
        if len(in_types) != self.arity:
            return None
        if any(t.ndim > 2 for t in in_types):
            return None
        return self._type_fn(*in_types)

    def __reduce__(self):
        # Fused atoms close over locally-built type functions, which do not
        # pickle; reducing to the name re-interns the atom on the receiving
        # side (catalog atoms resolve to the same module-level instances).
        return (atom_by_name, (self.name,))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


# ----------------------------------------------------------------------
# Type functions
# ----------------------------------------------------------------------
def _matmul_type(lhs: MatrixType, rhs: MatrixType) -> MatrixType | None:
    if lhs.cols != rhs.rows:
        return None
    return MatrixType((lhs.rows, rhs.cols), matmul_sparsity(lhs, rhs))


def _same_shape(lhs: MatrixType, rhs: MatrixType) -> bool:
    return (lhs.rows, lhs.cols) == (rhs.rows, rhs.cols)


def _add_type(lhs: MatrixType, rhs: MatrixType) -> MatrixType | None:
    if not _same_shape(lhs, rhs):
        return None
    return MatrixType((lhs.rows, lhs.cols),
                      union_sparsity(lhs.sparsity, rhs.sparsity))


def _hadamard_type(lhs: MatrixType, rhs: MatrixType) -> MatrixType | None:
    if not _same_shape(lhs, rhs):
        return None
    return MatrixType((lhs.rows, lhs.cols),
                      intersect_sparsity(lhs.sparsity, rhs.sparsity))


def _div_type(lhs: MatrixType, rhs: MatrixType) -> MatrixType | None:
    if not _same_shape(lhs, rhs):
        return None
    return MatrixType((lhs.rows, lhs.cols), lhs.sparsity)


def _keep_shape_sparsity(x: MatrixType) -> MatrixType:
    return MatrixType((x.rows, x.cols), x.sparsity)


def _densify(x: MatrixType) -> MatrixType:
    return MatrixType((x.rows, x.cols), 1.0)


def _transpose_type(x: MatrixType) -> MatrixType:
    return MatrixType((x.cols, x.rows), x.sparsity)


def _row_sums_type(x: MatrixType) -> MatrixType:
    return MatrixType((x.rows, 1), min(1.0, x.sparsity * x.cols))


def _col_sums_type(x: MatrixType) -> MatrixType:
    return MatrixType((1, x.cols), min(1.0, x.sparsity * x.rows))


def _inverse_type(x: MatrixType) -> MatrixType | None:
    if x.rows != x.cols:
        return None
    return MatrixType((x.rows, x.cols), 1.0)


def _add_bias_type(x: MatrixType, bias: MatrixType) -> MatrixType | None:
    # Broadcast add of a 1 x cols row vector to every row of x.
    if bias.rows != 1 or bias.cols != x.cols:
        return None
    return MatrixType((x.rows, x.cols),
                      union_sparsity(x.sparsity, bias.sparsity))


# ----------------------------------------------------------------------
# The catalog
# ----------------------------------------------------------------------
MATMUL = AtomicOp("matmul", 2, _matmul_type)
ADD = AtomicOp("add", 2, _add_type)
SUB = AtomicOp("sub", 2, _add_type)
ELEM_MUL = AtomicOp("elem_mul", 2, _hadamard_type)
ELEM_DIV = AtomicOp("elem_div", 2, _div_type)
SCALAR_MUL = AtomicOp("scalar_mul", 1, _keep_shape_sparsity)
TRANSPOSE = AtomicOp("transpose", 1, _transpose_type)
RELU = AtomicOp("relu", 1, _keep_shape_sparsity)
RELU_GRAD = AtomicOp("relu_grad", 1, _keep_shape_sparsity)
SIGMOID = AtomicOp("sigmoid", 1, _densify)
SOFTMAX = AtomicOp("softmax", 1, _densify)
EXP = AtomicOp("exp", 1, _densify)
ROW_SUMS = AtomicOp("row_sums", 1, _row_sums_type)
COL_SUMS = AtomicOp("col_sums", 1, _col_sums_type)
INVERSE = AtomicOp("inverse", 1, _inverse_type)
ADD_BIAS = AtomicOp("add_bias", 2, _add_bias_type)

#: The 16-operation default catalog ("16 different atomic computations",
#: paper Section 8.1).
DEFAULT_ATOMS: tuple[AtomicOp, ...] = (
    MATMUL, ADD, SUB, ELEM_MUL, ELEM_DIV, SCALAR_MUL, TRANSPOSE,
    RELU, RELU_GRAD, SIGMOID, SOFTMAX, EXP, ROW_SUMS, COL_SUMS,
    INVERSE, ADD_BIAS,
)

#: Element-wise unary maps share implementation machinery.
UNARY_MAPS: tuple[AtomicOp, ...] = (SCALAR_MUL, RELU, RELU_GRAD, SIGMOID, EXP)

#: Element-wise binary ops share implementation machinery.
BINARY_ELEMENTWISE: tuple[AtomicOp, ...] = (ADD, SUB, ELEM_MUL, ELEM_DIV)


# ----------------------------------------------------------------------
# Fused atoms (logical rewrite layer)
# ----------------------------------------------------------------------
#: Name prefix of every fused atom: ``fused(add_bias|relu)``,
#: ``fused(sub|scalar_mul:0.001)`` ...
FUSED_PREFIX = "fused("


@dataclass(frozen=True)
class FusedStep:
    """One step of a fused elementwise chain: a catalog op, plus the scalar
    parameter for ``scalar_mul`` steps."""

    op_name: str
    param: float | None = None

    @property
    def token(self) -> str:
        if self.param is None:
            return self.op_name
        return f"{self.op_name}:{self.param!r}"


#: Ops allowed as the *base* (first step) of a fused chain, beyond the
#: unary maps: elementwise binaries and the broadcast bias add.
FUSABLE_BASES: tuple[AtomicOp, ...] = BINARY_ELEMENTWISE + (ADD_BIAS,)

_FUSED_ATOMS: dict[str, AtomicOp] = {}
_FUSED_STEPS: dict[str, tuple[FusedStep, ...]] = {}


def fused_name(steps: tuple[FusedStep, ...]) -> str:
    return FUSED_PREFIX + "|".join(s.token for s in steps) + ")"


def is_fused(op: AtomicOp) -> bool:
    return op.name.startswith(FUSED_PREFIX)


def fused_atom(steps: tuple[FusedStep, ...]) -> AtomicOp:
    """The fused atom applying ``steps`` bottom-up as one operation.

    ``steps[0]`` is the base (a unary map, an elementwise binary or
    ``add_bias``) and every later step must be a unary map.  Instances are
    interned by name so graph vertices, catalog lookups and deserialized
    plans all share one :class:`AtomicOp` object per chain.
    """
    name = fused_name(steps)
    cached = _FUSED_ATOMS.get(name)
    if cached is not None:
        return cached
    if len(steps) < 2:
        raise ValueError("a fused atom needs at least two steps")
    base = atom_by_name(steps[0].op_name)
    unaries = tuple(atom_by_name(s.op_name) for s in steps[1:])
    if base not in FUSABLE_BASES and base not in UNARY_MAPS:
        raise ValueError(f"{base.name} cannot start a fused chain")
    if any(u not in UNARY_MAPS for u in unaries):
        raise ValueError("only unary maps can extend a fused chain")

    def _fused_type(*in_types: MatrixType) -> MatrixType | None:
        out = base.out_type(*in_types)
        for u in unaries:
            if out is None:
                return None
            out = u.out_type(out)
        return out

    atom = AtomicOp(name, base.arity, _fused_type)
    _FUSED_ATOMS[name] = atom
    _FUSED_STEPS[name] = tuple(steps)
    return atom


def fused_steps(name: str) -> tuple[FusedStep, ...]:
    """The step chain of a fused atom, parsing the name if necessary."""
    if name in _FUSED_STEPS:
        return _FUSED_STEPS[name]
    steps = _parse_fused_name(name)
    fused_atom(steps)  # intern (validates and fills both registries)
    return _FUSED_STEPS[name]


def _parse_fused_name(name: str) -> tuple[FusedStep, ...]:
    if not (name.startswith(FUSED_PREFIX) and name.endswith(")")):
        raise KeyError(f"not a fused atom name: {name!r}")
    body = name[len(FUSED_PREFIX):-1]
    steps = []
    for token in body.split("|"):
        if ":" in token:
            op_name, _, param = token.partition(":")
            steps.append(FusedStep(op_name, float(param)))
        else:
            steps.append(FusedStep(token))
    return tuple(steps)


def atom_by_name(name: str) -> AtomicOp:
    """Look up a catalog operation (or reconstruct a fused atom) by name."""
    for op in DEFAULT_ATOMS:
        if op.name == name:
            return op
    if name in _FUSED_ATOMS:
        return _FUSED_ATOMS[name]
    if name.startswith(FUSED_PREFIX):
        return fused_atom(_parse_fused_name(name))
    raise KeyError(f"unknown atomic computation: {name!r}")
