"""Traffic/compute ledger: the simulated clock of the engine.

Every relational operation (and every plan stage during pure simulation)
records its cost features here; the ledger converts them to seconds through
the same regression cost model the optimizer uses, and enforces per-worker
memory limits — the analogue of the paper's clusters crashing with "too much
intermediate data".
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cost.features import CostFeatures
from ..cost.model import CostModel, CostWeights, DEFAULT_WEIGHTS
from ..cluster import ClusterConfig


class EngineFailure(RuntimeError):
    """The (simulated) engine crashed — the paper's "Fail" entries."""

    def __init__(self, stage: str, reason: str) -> None:
        super().__init__(f"stage {stage!r} failed: {reason}")
        self.stage = stage
        self.reason = reason

    def __reduce__(self):
        # Exceptions default to pickling by ``args``, which here is the
        # formatted message — reconstruct from the real fields instead so
        # failures cross process boundaries intact.
        return (EngineFailure, (self.stage, self.reason))


#: Stage categories: productive work vs. fault-tolerance overheads.
WORK = "work"
RECOVERY = "recovery"
STRAGGLER = "straggler"
#: Time spent re-optimizing pending stages after the failure detector
#: declares a worker dead (degraded-mode re-planning — see
#: :mod:`repro.engine.dynamics`).
REPLAN = "replan"
#: Time spent moving results in and out of the shared
#: :class:`~repro.engine.intermediate.IntermediateStore`: fetches of
#: already-materialized subplans and store writes of fresh ones.  Not a
#: fault overhead — it is the (usually winning) price of reuse.
INTERMEDIATE_CACHE = "intermediate_cache"

#: Every category a ledger record may carry, in reporting order.  The
#: chaos harness asserts that these partition the clock exactly: any
#: second charged outside them would be unattributed fault time.
CATEGORIES = (WORK, RECOVERY, STRAGGLER, REPLAN, INTERMEDIATE_CACHE)


def _human_bytes(n: float) -> str:
    """Format a byte count at a readable scale (tiny test clusters would
    otherwise round to "0 GB")."""
    for scale, unit in ((1e12, "TB"), (1e9, "GB"), (1e6, "MB"), (1e3, "KB")):
        if n >= scale:
            return f"{n / scale:.1f} {unit}"
    return f"{n:.0f} B"


@dataclass
class StageRecord:
    """One executed/simulated stage with its features and charged seconds.

    ``category`` separates productive work from fault-tolerance overhead:
    ``"work"`` is normal execution, ``"recovery"`` is wasted partial work
    from a failed attempt plus retry backoff, ``"straggler"`` is time lost
    waiting on (or speculatively re-executing around) slow tasks.
    """

    name: str
    features: CostFeatures
    seconds: float
    category: str = WORK


@dataclass
class TrafficLedger:
    """Accumulates per-stage charges into a simulated wall clock."""

    cluster: ClusterConfig
    weights: CostWeights = DEFAULT_WEIGHTS
    stages: list[StageRecord] = field(default_factory=list)

    def __post_init__(self) -> None:
        self._model = CostModel(self.cluster, self.weights)

    # ------------------------------------------------------------------
    def charge(self, name: str, features: CostFeatures,
               category: str = WORK) -> float:
        """Record a stage; returns its seconds.  Raises on memory overflow."""
        if features.max_worker_bytes > self.cluster.ram_bytes:
            raise EngineFailure(
                name,
                f"needs {_human_bytes(features.max_worker_bytes)} of RAM "
                f"on one worker, only {_human_bytes(self.cluster.ram_bytes)} "
                "available")
        if features.spill_bytes > self.cluster.disk_bytes:
            raise EngineFailure(
                name,
                f"needs {_human_bytes(features.spill_bytes)} of spill space "
                f"per worker, only {_human_bytes(self.cluster.disk_bytes)} of "
                "local disk available (too much intermediate data)")
        seconds = self._model.seconds(features)
        self.stages.append(StageRecord(name, features, seconds, category))
        return seconds

    # ------------------------------------------------------------------
    def charge_overhead(self, name: str, seconds: float,
                        category: str = RECOVERY) -> float:
        """Charge pure wall-clock overhead (backoff, straggler waits).

        Carries no cost features and bypasses feasibility checks: the
        cluster is idling/waiting, not holding data.
        """
        self.stages.append(
            StageRecord(name, CostFeatures(), float(seconds), category))
        return float(seconds)

    def mark(self) -> int:
        """Checkpoint of the stage log, for :meth:`recategorize_since`."""
        return len(self.stages)

    def splice(self, fragments) -> list:
        """Splice per-stage record fragments into this ledger.

        ``fragments`` maps a sort key (the stage id) to that stage's
        private records.  Fragments always fold in sorted-key order, so
        the resulting record sequence — and every float total derived
        from it — is independent of the order the fragments were
        produced in (the thread-pool/sequential equivalence invariant).
        Returns the sorted keys.
        """
        keys = sorted(fragments)
        for key in keys:
            self.stages.extend(fragments[key])
        return keys

    def recategorize_since(self, mark: int, category: str) -> float:
        """Re-label every stage recorded after ``mark`` (e.g. as wasted
        work from a failed attempt); returns their total seconds."""
        return self.recategorize_range(mark, len(self.stages), category)

    def recategorize_range(self, start: int, end: int, category: str,
                           only: tuple[str, ...] | None = None) -> float:
        """Re-label the records in ``[start, end)``; returns their seconds.

        ``only`` restricts the relabelling to records currently in one of
        the given categories — speculative execution uses it to charge a
        losing attempt's work and straggler waits to ``"straggler"`` while
        leaving its genuine recovery charges attributed to recovery.
        """
        moved = 0.0
        for record in self.stages[start:end]:
            if only is not None and record.category not in only:
                continue
            record.category = category
            moved += record.seconds
        return moved

    # ------------------------------------------------------------------
    @property
    def total_seconds(self) -> float:
        """Simulated wall-clock total (including fault-tolerance overhead)."""
        return sum(s.seconds for s in self.stages)

    @property
    def work_seconds(self) -> float:
        """Seconds of productive (non-recovery) work."""
        return sum(s.seconds for s in self.stages if s.category == WORK)

    @property
    def recovery_seconds(self) -> float:
        """Seconds lost to faults: wasted attempts, backoff, stragglers.

        Intermediate-cache traffic is excluded: fetching or persisting a
        shared result is a deliberate reuse cost, not fault fallout.
        """
        return sum(s.seconds for s in self.stages
                   if s.category not in (WORK, INTERMEDIATE_CACHE))

    @property
    def intermediate_cache_seconds(self) -> float:
        """Seconds spent fetching from / writing to the shared store."""
        return sum(s.seconds for s in self.stages
                   if s.category == INTERMEDIATE_CACHE)

    @property
    def straggler_seconds(self) -> float:
        """Seconds charged to straggler waits and losing speculative runs."""
        return sum(s.seconds for s in self.stages
                   if s.category == STRAGGLER)

    @property
    def replan_seconds(self) -> float:
        """Seconds charged to degraded-mode re-planning."""
        return sum(s.seconds for s in self.stages if s.category == REPLAN)

    def seconds_by_category(self) -> dict[str, float]:
        """Total seconds per category (categories with charges only).

        Every record carries a category from :data:`CATEGORIES`, so these
        totals partition the clock: the chaos harness checks that every
        non-work charge is attributable to a named fault event.
        """
        totals: dict[str, float] = {}
        for s in self.stages:
            totals[s.category] = totals.get(s.category, 0.0) + s.seconds
        return totals

    @property
    def total_features(self) -> CostFeatures:
        total = CostFeatures()
        for s in self.stages:
            total = total + s.features
        return total

    def breakdown(self) -> str:
        """Per-stage report for debugging and examples."""
        lines = [f"{'stage':40s} {'seconds':>10s} {'net MB':>10s} {'tuples':>10s}"]
        for s in self.stages:
            name = s.name if s.category == WORK else f"{s.name} [{s.category}]"
            lines.append(
                f"{name:40s} {s.seconds:10.3f} "
                f"{s.features.network_bytes / 1e6:10.1f} "
                f"{s.features.tuples:10.0f}")
        lines.append(f"{'TOTAL':40s} {self.total_seconds:10.3f}")
        if self.recovery_seconds > 0:
            lines.append(f"{'  of which recovery':40s} "
                         f"{self.recovery_seconds:10.3f}")
        return "\n".join(lines)
