"""Tests for pipeline-aware timelines."""

import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import ADD, MATMUL, RELU
from repro.core.formats import single, tiles
from repro.engine.trace import schedule

CTX = OptimizerContext()


def _diamond_plan():
    """Two independent branches joined at the end — overlap available."""
    g = ComputeGraph()
    a = g.add_source("A", matrix(3000, 3000), tiles(1000))
    b = g.add_source("B", matrix(3000, 3000), tiles(1000))
    left = g.add_op("L", MATMUL, (a, a))
    right = g.add_op("R", MATMUL, (b, b))
    g.add_op("J", ADD, (left, right))
    return optimize(g, CTX)


def _chain_plan():
    """A strictly serial pipeline: unary ops over one matrix."""
    g = ComputeGraph()
    a = g.add_source("A", matrix(2000, 2000), single())
    x = g.add_op("X1", MATMUL, (a, a))
    x = g.add_op("X2", RELU, (x,))
    g.add_op("X3", RELU, (x,))
    return optimize(g, CTX)


class TestSchedule:
    def test_critical_path_at_most_sequential(self):
        for plan in (_diamond_plan(), _chain_plan()):
            timeline = schedule(plan, CTX)
            assert timeline.critical_path_seconds <= \
                timeline.sequential_seconds + 1e-9
            assert timeline.sequential_seconds == pytest.approx(
                plan.total_seconds, rel=1e-9)

    def test_diamond_exposes_parallelism(self):
        timeline = schedule(_diamond_plan(), CTX)
        assert timeline.parallelism > 1.2

    def test_chain_has_no_overlap(self):
        timeline = schedule(_chain_plan(), CTX)
        assert timeline.parallelism == pytest.approx(1.0, abs=1e-6)

    def test_stages_respect_dependencies(self):
        plan = _chain_plan()
        timeline = schedule(plan, CTX)
        by_name = {s.name: s for s in timeline.stages}
        x1 = next(s for n, s in by_name.items() if n.startswith("X1"))
        x2 = next(s for n, s in by_name.items() if n.startswith("X2"))
        x3 = next(s for n, s in by_name.items() if n.startswith("X3"))
        assert x1.end <= x2.start + 1e-9
        assert x2.end <= x3.start + 1e-9

    def test_critical_path_is_connected_chain(self):
        timeline = schedule(_chain_plan(), CTX)
        path = sorted(timeline.critical_path(), key=lambda s: s.start)
        assert path
        for earlier, later in zip(path, path[1:]):
            assert earlier.end <= later.start + 1e-9
        assert path[-1].end == pytest.approx(
            timeline.critical_path_seconds)

    def test_diamond_critical_path_is_single_chain(self):
        """The backpointer walk marks exactly one of the two diamond
        branches on-path: the stages marked critical form one connected
        serial chain, never both branches."""
        timeline = schedule(_diamond_plan(), CTX)
        assert timeline.parallelism > 1
        path = sorted(timeline.critical_path(), key=lambda s: s.start)
        assert path
        # One chain: consecutive on-path stages never overlap in time...
        for earlier, later in zip(path, path[1:]):
            assert earlier.end <= later.start + 1e-9
        # ... it spans the whole makespan ...
        assert path[0].start == pytest.approx(0.0)
        assert path[-1].end == pytest.approx(timeline.critical_path_seconds)
        assert sum(s.duration for s in path) == pytest.approx(
            timeline.critical_path_seconds, rel=1e-9)
        # ... and only one of the two branch matmuls is on it.
        branch_ops = [s for s in path if s.kind == "op"
                      and s.name.split(":")[0] in ("L", "R")]
        assert len(branch_ops) == 1

    def test_gantt_renders(self):
        timeline = schedule(_diamond_plan(), CTX)
        text = timeline.gantt()
        assert "critical path" in text
        assert "#" in text
