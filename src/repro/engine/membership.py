"""Cluster membership: deterministic worker churn and failure detection.

The paper optimizes for a *fixed* cluster, but a long-running service sees
workers die, slow down, and rejoin mid-execution.  This module models that
churn the same way :mod:`repro.engine.faults` models task faults — fully
deterministically, so every churn scenario is reproducible and identical
across schedulers:

* a :class:`MembershipEvent` is one scripted change (worker 3 crashes at
  simulated second 40, or at stage-graph frontier 2);
* a :class:`WorkerTimeline` is the full event schedule — either scripted
  explicitly (the chaos harness kills each worker at each frontier in
  turn) or derived from a seeded :class:`ChurnConfig`, where every draw
  comes from a ``random.Random`` keyed by ``(seed, purpose, worker)``
  (string seeds hash through SHA-512, independent of ``PYTHONHASHSEED``),
  so a worker's fate never depends on execution order;
* a :class:`MembershipView` tracks the engine's *current* belief — which
  workers are alive and which are degraded — as events are applied; and
* a :class:`HeartbeatDetector` turns a crash *time* into a *detection*
  time: crashes surface at the first heartbeat tick at or after the
  crash, plus a configurable suspicion timeout.  The gap between crash
  and detection is charged to the ledger by the dynamics driver
  (:mod:`repro.engine.dynamics`), so slow detection has a measured cost.

Simulated time throughout is ledger seconds, not wall-clock.
"""

from __future__ import annotations

import enum
import math
import random
from dataclasses import dataclass


class MembershipEventKind(enum.Enum):
    """What happened to a worker."""

    CRASH = "crash"
    SLOWDOWN = "slowdown"
    REJOIN = "rejoin"


@dataclass(frozen=True)
class MembershipEvent:
    """One change to the cluster's membership.

    Exactly one of ``time`` (simulated seconds) and ``frontier`` (index
    into :meth:`~repro.engine.stages.StageGraph.frontiers`) places the
    event: timed events model organic churn, frontier events script exact
    kill points for the chaos harness without precomputing the clock.
    A frontier event fires *after* that frontier's stages complete.
    """

    worker: int
    kind: MembershipEventKind
    time: float | None = None
    frontier: int | None = None
    #: Slowdown multiplier (``SLOWDOWN`` events only).
    factor: float = 1.0

    def __post_init__(self) -> None:
        if self.worker < 0:
            raise ValueError(f"worker must be >= 0, got {self.worker}")
        if (self.time is None) == (self.frontier is None):
            raise ValueError("exactly one of time= and frontier= must be "
                             f"given (got time={self.time!r}, "
                             f"frontier={self.frontier!r})")
        if self.time is not None and self.time < 0:
            raise ValueError("event time must be >= 0")
        if self.frontier is not None and self.frontier < 0:
            raise ValueError("event frontier must be >= 0")
        if self.kind is MembershipEventKind.SLOWDOWN and self.factor < 1.0:
            raise ValueError("slowdown factor must be >= 1.0")


def crash_at_frontier(worker: int, frontier: int) -> MembershipEvent:
    """The chaos harness's staple: kill ``worker`` after ``frontier``."""
    return MembershipEvent(worker, MembershipEventKind.CRASH,
                           frontier=frontier)


@dataclass(frozen=True)
class ChurnConfig:
    """Seeded probabilistic churn, drawn per ``(seed, purpose, worker)``.

    Each worker independently crashes with ``crash_probability`` at a
    uniform time within ``horizon_seconds``; a crashed worker rejoins
    with ``rejoin_probability`` at a uniform later time; and independently
    slows down by ``slowdown_factor`` with ``slowdown_probability``.  All
    draws derive from the seed and the worker id alone, so the timeline
    is a pure function of the config — scheduler- and hash-seed-
    independent, like every fault draw in this engine.
    """

    seed: int = 0
    crash_probability: float = 0.0
    slowdown_probability: float = 0.0
    slowdown_factor: float = 4.0
    rejoin_probability: float = 0.0
    horizon_seconds: float = 600.0

    def __post_init__(self) -> None:
        for name in ("crash_probability", "slowdown_probability",
                     "rejoin_probability"):
            p = getattr(self, name)
            if not 0.0 <= p <= 1.0:
                raise ValueError(f"{name} must be in [0, 1], got {p}")
        if self.slowdown_factor < 1.0:
            raise ValueError("slowdown_factor must be >= 1.0")
        if self.horizon_seconds <= 0:
            raise ValueError("horizon_seconds must be positive")

    def draw_events(self, num_workers: int) -> tuple[MembershipEvent, ...]:
        """Materialize the timeline's events for ``num_workers`` workers."""
        events: list[MembershipEvent] = []
        for worker in range(num_workers):
            crash_rng = random.Random(
                f"{self.seed}|membership|crash|{worker}")
            if crash_rng.random() < self.crash_probability:
                crash_time = crash_rng.uniform(0.0, self.horizon_seconds)
                events.append(MembershipEvent(
                    worker, MembershipEventKind.CRASH, time=crash_time))
                rejoin_rng = random.Random(
                    f"{self.seed}|membership|rejoin|{worker}")
                if rejoin_rng.random() < self.rejoin_probability:
                    events.append(MembershipEvent(
                        worker, MembershipEventKind.REJOIN,
                        time=rejoin_rng.uniform(crash_time,
                                                self.horizon_seconds)))
            slow_rng = random.Random(
                f"{self.seed}|membership|slowdown|{worker}")
            if slow_rng.random() < self.slowdown_probability:
                events.append(MembershipEvent(
                    worker, MembershipEventKind.SLOWDOWN,
                    time=slow_rng.uniform(0.0, self.horizon_seconds),
                    factor=self.slowdown_factor))
        return tuple(sorted(events, key=lambda e: (e.time, e.worker,
                                                   e.kind.value)))


class WorkerTimeline:
    """The full, immutable schedule of membership events for one run.

    Queries are pure — the dynamics driver tracks which events it has
    already consumed by only ever asking for half-open time windows
    ``(t0, t1]`` and exact frontier indexes.
    """

    def __init__(self, num_workers: int,
                 events: tuple[MembershipEvent, ...] | list[MembershipEvent]
                 = (),
                 churn: ChurnConfig | None = None) -> None:
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self.num_workers = num_workers
        drawn = churn.draw_events(num_workers) if churn is not None else ()
        all_events = tuple(events) + drawn
        for event in all_events:
            if event.worker >= num_workers:
                raise ValueError(
                    f"event for worker {event.worker} but the cluster has "
                    f"only {num_workers} workers")
        self.events = all_events

    @property
    def any_events(self) -> bool:
        return bool(self.events)

    def timed_between(self, t0: float,
                      t1: float) -> tuple[MembershipEvent, ...]:
        """Timed events in ``(t0, t1]``, in (time, worker) order."""
        hits = [e for e in self.events
                if e.time is not None and t0 < e.time <= t1]
        return tuple(sorted(hits, key=lambda e: (e.time, e.worker,
                                                 e.kind.value)))

    def at_frontier(self, frontier: int) -> tuple[MembershipEvent, ...]:
        """Frontier-scripted events firing after ``frontier`` completes."""
        hits = [e for e in self.events if e.frontier == frontier]
        return tuple(sorted(hits, key=lambda e: (e.worker, e.kind.value)))


class MembershipView:
    """The engine's current belief about which workers are usable.

    Crash and rejoin events shrink and grow the alive set; slowdown
    events tag a worker with its degradation factor (cleared if it
    rejoins fresh).  ``apply`` is idempotent per event and returns
    whether anything actually changed, so replaying a checkpoint's event
    history reconverges to the same view.
    """

    def __init__(self, num_workers: int) -> None:
        self.num_workers = num_workers
        self._alive = set(range(num_workers))
        self._slow: dict[int, float] = {}
        #: Every event applied, in application order (for reports).
        self.history: list[MembershipEvent] = []

    @property
    def alive(self) -> frozenset[int]:
        return frozenset(self._alive)

    @property
    def n_alive(self) -> int:
        return len(self._alive)

    def slowdown(self, worker: int) -> float:
        """Current degradation factor of ``worker`` (1.0 = healthy)."""
        return self._slow.get(worker, 1.0)

    @property
    def slow_workers(self) -> dict[int, float]:
        return dict(self._slow)

    def apply(self, event: MembershipEvent) -> bool:
        changed = False
        if event.kind is MembershipEventKind.CRASH:
            if event.worker in self._alive:
                self._alive.discard(event.worker)
                self._slow.pop(event.worker, None)
                changed = True
        elif event.kind is MembershipEventKind.REJOIN:
            if event.worker not in self._alive:
                self._alive.add(event.worker)
                self._slow.pop(event.worker, None)
                changed = True
        else:
            if self._slow.get(event.worker) != event.factor \
                    and event.worker in self._alive:
                self._slow[event.worker] = event.factor
                changed = True
        if changed:
            self.history.append(event)
        return changed


@dataclass(frozen=True)
class HeartbeatConfig:
    """Simulated failure-detection parameters.

    Workers heartbeat every ``interval_seconds`` of simulated time; a
    crashed worker is *suspected* at its first missed heartbeat — the
    first tick at or after the crash — and *declared dead* once
    ``suspicion_timeout_seconds`` more pass without one.  A longer
    timeout means fewer false positives on a real cluster; here it
    simply delays detection, and the delay is charged to the ledger.
    """

    interval_seconds: float = 5.0
    suspicion_timeout_seconds: float = 15.0

    def __post_init__(self) -> None:
        if self.interval_seconds <= 0:
            raise ValueError("interval_seconds must be positive")
        if self.suspicion_timeout_seconds < 0:
            raise ValueError("suspicion_timeout_seconds must be >= 0")


class HeartbeatDetector:
    """Maps crash times to detection times under a :class:`HeartbeatConfig`.

    Pure arithmetic — no state — so detection is exactly reproducible:
    ``detect(t) = ceil(t / interval) * interval + suspicion_timeout``.
    """

    def __init__(self, config: HeartbeatConfig | None = None) -> None:
        self.config = config if config is not None else HeartbeatConfig()

    def detection_time(self, crash_time: float) -> float:
        """When a crash at ``crash_time`` is declared (simulated seconds)."""
        interval = self.config.interval_seconds
        first_missed = math.ceil(crash_time / interval) * interval
        return first_missed + self.config.suspicion_timeout_seconds

    def detection_delay(self, crash_time: float) -> float:
        """Seconds between the crash and its declaration."""
        return self.detection_time(crash_time) - crash_time
