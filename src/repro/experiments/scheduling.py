"""Scheduler-overlap experiment: sum clock vs critical path vs wall clock.

The paper's objective is the *sum* of stage costs, but its substrates
overlap independent stages.  With plans lowered to one stage DAG
(:mod:`repro.engine.stages`), the same IR yields both predicted clocks —
``simulate(clock="sum")`` and ``simulate(clock="critical_path")`` — and the
:class:`~repro.engine.scheduler.ThreadPoolScheduler` actually executes the
overlap on real data.  :func:`ext_scheduler_overlap` reports all three per
workload, plus the measured sequential/parallel wall-clock ratio, and
verifies the two schedulers' ledgers are bit-identical.
"""

from __future__ import annotations

import time

import numpy as np

from ..core.atoms import ADD, MATMUL, RELU
from ..core.formats import tiles
from ..core.graph import ComputeGraph
from ..core.optimizer import optimize
from ..core.registry import OptimizerContext
from ..core.types import matrix
from ..engine.executor import Executor, simulate
from ..engine.scheduler import SequentialScheduler, ThreadPoolScheduler
from .harness import ExperimentTable


def _chain_workload(n: int = 64) -> tuple[ComputeGraph, dict]:
    """A two-layer network: mostly serial, little overlap to expose."""
    rng = np.random.default_rng(11)
    g = ComputeGraph()
    x = g.add_source("X", matrix(n, n), tiles(32))
    w1 = g.add_source("W1", matrix(n, n), tiles(32))
    w2 = g.add_source("W2", matrix(n, n), tiles(32))
    h = g.add_op("H", MATMUL, (x, w1))
    r = g.add_op("R", RELU, (h,))
    g.add_op("Y", MATMUL, (r, w2))
    inputs = {name: rng.standard_normal((n, n))
              for name in ("X", "W1", "W2")}
    return g, inputs


def _diamond_workload(n: int = 64) -> tuple[ComputeGraph, dict]:
    """Two independent matmul branches joined by an add: real overlap."""
    rng = np.random.default_rng(13)
    g = ComputeGraph()
    x = g.add_source("X", matrix(n, n), tiles(32))
    wl = g.add_source("WL", matrix(n, n), tiles(32))
    wr = g.add_source("WR", matrix(n, n), tiles(32))
    left = g.add_op("L", MATMUL, (x, wl))
    right = g.add_op("R", MATMUL, (x, wr))
    g.add_op("OUT", ADD, (left, right))
    inputs = {name: rng.standard_normal((n, n))
              for name in ("X", "WL", "WR")}
    return g, inputs


def _measure(plan, inputs, ctx, scheduler) -> tuple[float, object]:
    executor = Executor(plan, ctx, scheduler=scheduler)
    begin = time.perf_counter()
    result = executor.run(inputs)
    return time.perf_counter() - begin, result


def ext_scheduler_overlap() -> ExperimentTable:
    """Predicted overlap from the stage DAG vs measured parallel speedup."""
    workloads = {
        "FFNN chain": _chain_workload(),
        "diamond": _diamond_workload(),
    }
    table = ExperimentTable(
        "ext_scheduler_overlap",
        "Pipeline overlap: predicted sum vs critical-path clocks from the "
        "lowered stage DAG, and measured sequential vs thread-pool "
        "wall-clock on real data",
        ["workload", "sum clock", "critical path", "overlap",
         "wall seq", "wall pool", "speedup"])
    identical = True
    for name, (graph, inputs) in workloads.items():
        ctx = OptimizerContext()
        plan = optimize(graph, ctx, max_states=500)
        total = simulate(plan, ctx, clock="sum")
        critical = simulate(plan, ctx, clock="critical_path")
        overlap = (total.seconds / critical.seconds
                   if critical.seconds > 0 else 1.0)
        seq_wall, seq = _measure(plan, inputs, ctx, SequentialScheduler())
        pool_wall, pool = _measure(plan, inputs, ctx, ThreadPoolScheduler())
        identical &= (seq.ledger.total_seconds == pool.ledger.total_seconds)
        for out, value in seq.outputs.items():
            identical &= bool(np.array_equal(pool.outputs[out], value))
        table.add_row(
            name, f"{total.seconds:.2f}s", f"{critical.seconds:.2f}s",
            f"x{overlap:.2f}", f"{seq_wall * 1e3:.1f}ms",
            f"{pool_wall * 1e3:.1f}ms",
            f"x{seq_wall / pool_wall:.2f}" if pool_wall > 0 else "-")
    if identical:
        table.add_note("thread-pool outputs and ledger totals verified "
                       "bit-identical to the sequential scheduler "
                       "(sub-ledgers merge in stage-id order)")
    else:
        table.add_note("UNEXPECTED: schedulers disagreed on outputs or "
                       "ledger totals")
    table.add_note("wall-clock is laptop-scale numpy execution; the "
                   "simulated clocks model the paper's cluster, so columns "
                   "are not directly comparable across the two groups")
    return table


SCHEDULING_EXPERIMENTS = {
    "ext_scheduler_overlap": ext_scheduler_overlap,
}
