"""Optimizer facade: the staged plan pipeline.

Optimization is a pipeline of explicit stages:

1. **Logical rewrites** (``rewrites=`` knob): an ordered sequence of
   semantics-preserving, cost-guided graph passes — CSE, transpose
   pushdown, matmul-chain reassociation, scalar pushdown, elementwise
   fusion (see :mod:`repro.core.rewrites`).
2. **Physical optimization**: the linear-time tree DP (paper Algorithm 3)
   when the graph is tree shaped, the frontier algorithm (paper
   Algorithm 4) for general DAGs, or brute force (paper Algorithm 2) on
   request.

Stage 1 has two interchangeable engines behind the ``rewrites=`` knob:
the ordered pass pipeline (``"pipeline"``/``"all"``) and the
equality-saturation e-graph of :mod:`repro.core.egraph` (``"egraph"``),
which explores all rule orders at once and extracts the catalog-cheapest
term.  When rewrites run, fallback candidates are also optimized and the
cheapest plan wins — the unrewritten graph for the pipeline engine, plus
the pipeline-rewritten graph for the egraph engine — so ``"pipeline"``
never costs more than ``"off"`` and ``"egraph"`` never costs more than
either.  The returned :class:`Plan` carries a
:class:`~repro.core.rewrites.PipelineReport` describing what the engine
did (per-pass reports, or saturation statistics).
"""

from __future__ import annotations

import dataclasses

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer, as_tracer
from .annotation import Plan
from .brute import optimize_brute
from .egraph import saturate_graph
from .fingerprint import graph_signature
from .frontier import FRONTIERS, FrontierStats, optimize_dag
from .graph import ComputeGraph
from .registry import OptimizerContext
from .rewrites import PipelineReport, PlanPipeline, RewriteSpec, \
    resolve_engine, validate_rewrites
from .tree_dp import optimize_tree

ALGORITHMS = ("auto", "tree", "frontier", "brute")


def context_for_graph(graph: ComputeGraph, ctx: OptimizerContext
                      ) -> OptimizerContext:
    """Extend the context's format catalog with the graph's load formats.

    Input matrices may arrive in formats outside the search catalog (e.g.
    width-10 strips in the Section 2.1 example).  Adding them lets the
    search use implementations on the loaded formats directly instead of
    forcing a transformation first.
    """
    extra = [s.format for s in graph.sources if s.format not in ctx.formats]
    if not extra:
        return ctx
    seen = dict.fromkeys(tuple(ctx.formats) + tuple(extra))
    return dataclasses.replace(ctx, formats=tuple(seen))


#: Backwards-compatible alias for the pre-service private name.
_context_for = context_for_graph


def optimize(graph: ComputeGraph, ctx: OptimizerContext | None = None,
             algorithm: str = "auto",
             timeout_seconds: float | None = None,
             stats: FrontierStats | None = None,
             max_states: int | None = None,
             rewrites: RewriteSpec = "none",
             prune: bool | None = None,
             order: str = "class-size",
             frontier: str = "array",
             tracer: Tracer | None = None,
             metrics: MetricsRegistry | None = None) -> Plan:
    """Produce the cost-optimal, type-correct annotated plan for ``graph``.

    ``algorithm`` is one of ``auto`` (tree DP when tree shaped, else the
    frontier algorithm), ``tree``, ``frontier`` or ``brute``.
    ``timeout_seconds`` only applies to brute force; ``max_states``
    beam-prunes the frontier algorithm's class tables (None = exact).
    ``prune`` and ``order`` tune the frontier algorithm's lossless
    dominance prune and sweep-order heuristic (see
    :func:`repro.core.frontier.optimize_dag`); neither changes the
    returned plan.  ``prune=None`` (the default) prunes exactly when no
    beam is active.  ``frontier`` selects the frontier algorithm's table
    representation: ``"array"`` (vectorized, the default) or ``"object"``
    (the per-state differential oracle) — bit-identical results, different
    speed.  Unknown values raise ``ValueError`` up front, even when the
    frontier algorithm would not run for this graph.

    ``rewrites`` selects the logical rewrite engine that runs before the
    physical search: ``"pipeline"`` (alias ``"all"``, the default pass
    order), ``"egraph"`` (equality saturation + cheapest-term extraction),
    ``"off"`` (alias ``"none"``), or a tuple of pass names from
    :data:`repro.core.rewrites.PASS_REGISTRY` in the order they should run.

    ``tracer`` records the optimization as nested spans (``optimize`` →
    one ``pass`` span per rewrite pass → one ``search`` span per physical
    search, with the frontier's sweep/reconstruct phases nested inside);
    ``metrics`` accumulates search-effort counters.  Both default to off
    (see :mod:`repro.obs`).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(f"unknown algorithm {algorithm!r}; "
                         f"expected one of {ALGORITHMS}")
    if frontier not in FRONTIERS:
        raise ValueError(f"unknown frontier {frontier!r}; "
                         f"expected one of {FRONTIERS}")
    # Like the algorithm/frontier knobs above: a typo must fail here, not
    # silently plan without rewrites.
    validate_rewrites(rewrites)
    if ctx is None:
        ctx = OptimizerContext()
    ctx = context_for_graph(graph, ctx)
    tracer = as_tracer(tracer)

    with tracer.span("optimize", kind="optimize", algorithm=algorithm,
                     vertices=len(graph)) as span:
        rewritten, report = rewrite_stage(graph, ctx, rewrites, tracer)
        plan = physical_plan(graph, rewritten, report, ctx,
                             algorithm=algorithm,
                             timeout_seconds=timeout_seconds, stats=stats,
                             max_states=max_states, prune=prune, order=order,
                             frontier=frontier, tracer=tracer)
        span.set(optimizer=plan.optimizer, seconds=plan.total_seconds)

    record_optimize_metrics(plan, metrics)
    return plan


def rewrite_stage(graph: ComputeGraph, ctx: OptimizerContext,
                  rewrites: RewriteSpec = "none",
                  tracer: Tracer = NULL_TRACER
                  ) -> tuple[ComputeGraph, PipelineReport | None]:
    """Stage 1: run the logical rewrite engine selected by ``rewrites``.

    ``"pipeline"``/``"all"`` (or a pass-name tuple) runs the ordered pass
    pipeline; ``"egraph"`` saturates an e-graph under the default budget
    and extracts the catalog-cheapest term; ``"off"``/``"none"`` returns
    ``(graph, None)``.  Exposed separately from :func:`optimize` so the
    planner service can fingerprint the rewritten graph before deciding
    whether a physical search is needed.
    """
    engine, spec = resolve_engine(rewrites)
    if engine == "egraph":
        rewritten, sat = saturate_graph(graph, ctx, tracer=tracer)
        report = PipelineReport((), adopted=True, engine="egraph",
                                saturation=sat)
        return rewritten, report
    pipeline = PlanPipeline.from_spec(spec)
    if not pipeline.passes:
        return graph, None
    return pipeline.run(graph, ctx, tracer=tracer)


def physical_plan(graph: ComputeGraph, rewritten: ComputeGraph,
                  report: PipelineReport | None, ctx: OptimizerContext,
                  algorithm: str = "auto",
                  timeout_seconds: float | None = None,
                  stats: FrontierStats | None = None,
                  max_states: int | None = None,
                  prune: bool | None = None,
                  order: str = "class-size",
                  frontier: str = "array",
                  tracer: Tracer = NULL_TRACER) -> Plan:
    """Stage 2 + never-worse fallback over one rewritten graph.

    Optimizes ``rewritten``; when the rewrite engine actually changed the
    graph, also optimizes fallback candidates and keeps the cheapest plan
    (the logical layer is guided by per-op estimates, so a rewrite can
    occasionally lose once transformations are priced in):

    * pipeline engine — the unrewritten ``graph``;
    * egraph engine — the pipeline-rewritten graph *and* the unrewritten
      ``graph``, so ``rewrites="egraph"`` is never costlier than either
      ``"pipeline"`` or ``"off"``.

    The chosen plan carries ``report`` (``adopted``/``fallback`` downgraded
    when a fallback candidate won).  Structurally identical candidates are
    skipped — the search is deterministic, so they cannot differ.
    """
    plan = _optimize_physical(rewritten, ctx, algorithm,
                              timeout_seconds, stats, max_states,
                              prune, order, frontier, tracer)
    if report is not None and report.total_rewrites > 0:
        signature = graph_signature(rewritten)[0]
        if report.engine == "egraph":
            pipe_graph, _ = PlanPipeline.from_spec("all").run(
                graph, ctx, tracer=tracer)
            if graph_signature(pipe_graph)[0] != signature:
                pipe_plan = _optimize_physical(
                    pipe_graph, ctx, algorithm, timeout_seconds, stats,
                    max_states, prune, order, frontier, tracer)
                if pipe_plan.total_seconds < plan.total_seconds:
                    plan = pipe_plan
                    report = dataclasses.replace(
                        report, adopted=False, fallback="pipeline")
                    signature = graph_signature(pipe_graph)[0]
        if graph_signature(graph)[0] != signature:
            plain = _optimize_physical(graph, ctx, algorithm,
                                       timeout_seconds, stats, max_states,
                                       prune, order, frontier, tracer)
            if plain.total_seconds < plan.total_seconds:
                plan = plain
                report = dataclasses.replace(report, adopted=False,
                                             fallback="unrewritten")
    if report is not None:
        plan = dataclasses.replace(plan, pipeline=report)
    return plan


def record_optimize_metrics(plan: Plan,
                            metrics: MetricsRegistry | None) -> None:
    """Charge one *cold* optimization run's effort to ``metrics``.

    No-op without a registry.  Plan-cache hits must not be recorded here —
    they did not run the optimizer; the planner service counts them under
    ``planner.cache.*`` instead.
    """
    if metrics is None:
        return
    metrics.count("optimizer.runs")
    if plan.profile is not None:
        plan.profile.record(metrics)
    report = plan.pipeline
    if report is not None:
        metrics.count("optimizer.rewrite_passes_run", len(report.passes))
        metrics.count("optimizer.rewrites_applied",
                      report.total_rewrites if report.adopted else 0)
        sat = report.saturation
        if sat is not None:
            metrics.count("egraph.saturations")
            metrics.count("egraph.iterations", sat.iterations)
            metrics.count("egraph.rewrites", sat.total_rewrites)
            metrics.gauge("egraph.e_nodes", sat.e_nodes)
            metrics.gauge("egraph.e_classes", sat.e_classes)
            metrics.gauge("egraph.seconds", sat.seconds)
            if sat.budget_exhausted is not None:
                metrics.count("egraph.budget_exhausted")
            if not report.adopted:
                metrics.count("egraph.fallbacks")


def _optimize_physical(graph: ComputeGraph, ctx: OptimizerContext,
                       algorithm: str,
                       timeout_seconds: float | None,
                       stats: FrontierStats | None,
                       max_states: int | None,
                       prune: bool | None = None,
                       order: str = "class-size",
                       frontier: str = "array",
                       tracer: Tracer = NULL_TRACER) -> Plan:
    """Stage 2: physical search over one (possibly rewritten) graph."""
    if algorithm == "auto":
        algorithm = "tree" if graph.is_tree_shaped() else "frontier"
    with tracer.span(f"search:{algorithm}", kind="search",
                     algorithm=algorithm) as span:
        if algorithm == "tree":
            plan = optimize_tree(graph, ctx)
        elif algorithm == "frontier":
            plan = optimize_dag(graph, ctx, stats=stats,
                                max_states=max_states, prune=prune,
                                order=order, tracer=tracer,
                                frontier=frontier)
        else:
            plan = optimize_brute(graph, ctx,
                                  timeout_seconds=timeout_seconds)
        span.set(seconds=plan.total_seconds)
        if plan.profile is not None:
            span.set(states_explored=plan.profile.states_explored,
                     states_pruned=plan.profile.states_pruned)
    return plan
