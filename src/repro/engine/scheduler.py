"""Schedulers: run a lowered :class:`~repro.engine.stages.StageGraph`.

The executor used to *be* the schedule — a hard-coded sequential walk.  Now
the walk order is a strategy over the stage DAG:

* :class:`SequentialScheduler` runs stages one by one in stage-id
  (topological) order — exactly the historical behaviour;
* :class:`ThreadPoolScheduler` runs independent stages concurrently on
  threads; and
* :class:`ProcessPoolScheduler` runs independent stages in worker
  *processes*, shipping each stage as a picklable job description and
  folding the outcomes back in stage-id order.

All produce **bit-identical ledgers** on fault-free runs: every stage
charges a private sub-ledger, and :meth:`ExecutionState.merge_into` splices
the sub-ledgers into the main ledger in stage-id order, so the merged
record sequence — and therefore every float total — is independent of the
order stages actually ran in.  Fault handling is deterministic the same
way: injected faults are a pure function of ``(seed, stage, occurrence)``
(see :mod:`repro.engine.faults`), each stage retries its own faults from
lineage under the recovery policy, and recovery statistics are folded in
stage-id order at merge time.

The one asymmetry is *failure*: when a stage dies structurally
(:class:`~repro.engine.ledger.EngineFailure`), the sequential scheduler
stops immediately while the pool may have finished later independent
stages first — so a failed run's ledger can hold a superset of the
sequential charges.  Both schedulers report the same failure: the failing
stage with the smallest stage id.
"""

from __future__ import annotations

import threading
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    wait,
)
from dataclasses import dataclass

import numpy as np

from ..obs.metrics import MetricsRegistry
from ..obs.tracer import NULL_TRACER, Tracer
from .faults import FaultInjector, InjectedFault
from .ledger import RECOVERY, STRAGGLER, WORK, StageRecord, TrafficLedger
from .recovery import (
    FaultRetriesExhausted,
    LineageCheckpoint,
    RecoveryPolicy,
    RecoveryStats,
    SpeculationPolicy,
)
from .relation import RelationalEngine
from .stages import OpStage, StageGraph, StageNode, TransformStage
from .storage import StoredMatrix, convert, split


# ======================================================================
# Stage execution core
# ======================================================================
# Module-level (not ExecutionState methods) so the process-pool child entry
# point can run the exact same retry/speculation code path as the in-process
# schedulers: identical charge sequences mean identical ledgers.

def _execute_stage(stage: StageNode, resolve, sub: TrafficLedger,
                   engine: RelationalEngine, cluster) -> StoredMatrix:
    """Run one stage's body once; ``resolve`` maps ArgRefs to matrices."""
    if isinstance(stage, TransformStage):
        sub.charge(stage.name, stage.features)
        src = resolve(("vertex", stage.edge.src))
        return convert(src, stage.dst_fmt, cluster)
    assert isinstance(stage, OpStage)
    args = [resolve(ref) for ref in stage.args]
    return stage.thunk(engine, args)


def _run_attempts(stage: StageNode, resolve, sub: TrafficLedger,
                  engine: RelationalEngine, policy: RecoveryPolicy,
                  span, recovery_log: list, cluster):
    """The retry loop: run the stage until it completes or the budget dies.

    Every failed attempt's partial charges are re-labelled as recovery
    cost, a capped exponential backoff is charged, and the stage re-runs
    from its (still checkpointed) inputs.  One ``(fault, backoff, wasted,
    retried)`` entry is appended to ``recovery_log`` per injected fault —
    including the final, non-retried one when the budget is exhausted — so
    ``len(recovery_log)`` is the attempt count.  Returns ``(result,
    retries, mark)`` where ``mark`` is the ledger mark of the winning
    attempt (the speculation layer measures the attempt from it).
    """
    attempt = 0
    while True:
        mark = sub.mark()
        try:
            with span.span("attempt", kind="attempt", n=attempt):
                result = _execute_stage(stage, resolve, sub, engine, cluster)
            return result, attempt, mark
        except InjectedFault as fault:
            attempt += 1
            wasted = sub.recategorize_since(mark, RECOVERY)
            if attempt > policy.max_retries:
                recovery_log.append((fault, 0.0, wasted, False))
                raise FaultRetriesExhausted(fault.stage, policy.max_retries,
                                            fault)
            backoff = policy.backoff_seconds(attempt)
            sub.charge_overhead(f"{fault.stage}:backoff#{attempt}", backoff)
            recovery_log.append((fault, backoff, wasted, True))


def _speculate(stage: StageNode, resolve, sub: TrafficLedger,
               engine: RelationalEngine, span, attempt_mark: int,
               result: StoredMatrix, deadline_multiplier: float, cluster):
    """Race one backup attempt against a straggling stage.

    The deadline is the stage's predicted seconds times the policy's
    quantile multiplier; the original attempt's charged seconds stand
    in for its (simulated) finish time, and the backup — launched at
    the deadline — finishes at ``deadline + its charged seconds``.
    First finisher wins; the loser's work and waits move to the
    ``"straggler"`` category.  Everything here depends only on the
    stage's own sub-ledger, so every scheduler decides identically.

    Returns ``(winning result, effective stage seconds or None,
    outcome label or None)`` — effective seconds are the winner's
    finish plus any pre-attempt recovery time, for the measured
    critical path.
    """
    deadline = stage.seconds * deadline_multiplier
    original = sum(r.seconds for r in sub.stages[attempt_mark:])
    if deadline <= 0.0 or original <= deadline:
        return result, None, None
    prefix = sum(r.seconds for r in sub.stages[:attempt_mark])
    backup_mark = sub.mark()
    with span.span("backup", kind="speculate",
                   deadline_seconds=deadline,
                   original_seconds=original) as bspan:
        try:
            backup = _execute_stage(stage, resolve, sub, engine, cluster)
        except InjectedFault:
            # The backup died mid-flight: the original stands, and the
            # backup's partial work was pure extra.
            sub.recategorize_since(backup_mark, STRAGGLER)
            bspan.set(outcome="faulted")
            return result, prefix + original, "faulted"
        backup_seconds = sum(r.seconds
                             for r in sub.stages[backup_mark:])
        backup_finish = deadline + backup_seconds
        if backup_finish < original:
            # Backup wins: the straggling original was all wasted.
            sub.recategorize_range(attempt_mark, backup_mark, STRAGGLER,
                                   only=(WORK, STRAGGLER))
            bspan.set(outcome="won", backup_seconds=backup_seconds)
            return backup, prefix + backup_finish, "won"
        sub.recategorize_since(backup_mark, STRAGGLER)
        bspan.set(outcome="lost", backup_seconds=backup_seconds)
        return result, prefix + original, "lost"


@dataclass
class _StageJob:
    """Everything a worker process needs to run one stage (all picklable).

    The parent resolves the stage's inputs (``ArgRef -> StoredMatrix``)
    before dispatch — lineage and earlier stage outputs live in the parent
    — and ships the injector by pickle, whose counts *are* its RNG state.
    ``prior`` carries the stage's earlier records when the dynamics layer
    re-runs it, so ledger marks and totals match the in-process path.
    """

    stage: StageNode
    inputs: dict
    prior: tuple
    cluster: object
    weights: object
    policy: RecoveryPolicy
    injector: FaultInjector | None
    deadline_multiplier: float | None
    speculative_backups: bool


@dataclass
class _StageOutcome:
    """What a worker process sends back after running one stage."""

    records: list
    retries: int
    recovery_log: list
    measured_seconds: float
    effective: float | None
    spec_outcome: str | None
    result: StoredMatrix | None
    error: BaseException | None
    injector_cursor: dict | None


def _run_stage_job(job: _StageJob) -> _StageOutcome:
    """Child-process entry point: run one stage from its job description.

    Charges a fresh sub-ledger exactly as
    :meth:`ExecutionState.run_stage` does and returns everything the
    parent needs to splice the run back in.  Engine-level failures travel
    in ``error`` (with the partial charges kept in ``records``) instead of
    unwinding through the pool, so the parent re-raises the same exception
    the sequential scheduler would have.
    """
    sub = TrafficLedger(job.cluster, job.weights)
    sub.stages.extend(job.prior)
    engine = RelationalEngine(job.cluster, sub, faults=job.injector,
                              speculative_backups=job.speculative_backups)
    span = NULL_TRACER.span(job.stage.name)
    log: list = []
    result = error = None
    effective = spec_outcome = None
    try:
        with span:
            result, _, mark = _run_attempts(
                job.stage, job.inputs.__getitem__, sub, engine, job.policy,
                span, log, job.cluster)
            if job.deadline_multiplier is not None:
                result, effective, spec_outcome = _speculate(
                    job.stage, job.inputs.__getitem__, sub, engine, span,
                    mark, result, job.deadline_multiplier, job.cluster)
    except Exception as exc:
        result = None
        error = exc
    return _StageOutcome(
        records=sub.stages, retries=len(log), recovery_log=log,
        measured_seconds=sub.total_seconds, effective=effective,
        spec_outcome=spec_outcome, result=result, error=error,
        injector_cursor=(job.injector.cursor()
                         if job.injector is not None else None))


class ExecutionState:
    """Shared state of one execution of a stage graph.

    Holds the lineage checkpoints, each stage's private sub-ledger records,
    and the per-stage recovery log.  All mutation is behind one lock so a
    thread-pool scheduler can drive :meth:`run_stage` from many threads;
    the sequential scheduler pays only uncontended acquisitions.
    """

    def __init__(self, sgraph: StageGraph, ctx,
                 injector: FaultInjector | None,
                 policy: RecoveryPolicy,
                 lineage: LineageCheckpoint | None = None,
                 stats: RecoveryStats | None = None,
                 tracer: Tracer | None = None,
                 parent_span=None,
                 metrics: MetricsRegistry | None = None,
                 speculation: SpeculationPolicy | None = None,
                 drift=None) -> None:
        self.sgraph = sgraph
        self.ctx = ctx
        self.cluster = ctx.cluster
        self.injector = injector
        self.policy = policy
        self.lineage = lineage if lineage is not None else LineageCheckpoint()
        self.stats = stats if stats is not None else RecoveryStats()
        self.tracer = tracer if tracer is not None else NULL_TRACER
        #: Span every stage span parents under (the ``execute`` span);
        #: explicit because pool stages run on other threads.
        self.parent_span = parent_span
        self.metrics = metrics
        #: Stage-level speculative execution (see
        #: :class:`~repro.engine.recovery.SpeculationPolicy`); ``drift`` is
        #: a prior run's report the deadline multiplier is estimated from.
        self.speculation = speculation
        self._deadline_multiplier = (
            speculation.deadline_multiplier(drift)
            if speculation is not None else None)
        #: Transform-stage outputs, by stage id.
        self.stage_values: dict[int, StoredMatrix] = {}
        #: Each stage's sub-ledger records, by stage id (present for every
        #: stage that *started*, even ones that failed).
        self.records: dict[int, list[StageRecord]] = {}
        #: Stage ids that ran to completion.  Schedulers skip them, which
        #: is what makes checkpoint resume and frontier-by-frontier
        #: dynamics driving possible.
        self.completed: set[int] = set()
        #: Effective per-stage elapsed seconds (winner finish time under
        #: speculation, sub-ledger total otherwise) — feeds
        #: :meth:`effective_critical_path`.
        self.effective_seconds: dict[int, float] = {}
        #: Per-stage metric fragments, merged in stage-id order at
        #: :meth:`merge_into` so both schedulers produce bit-identical
        #: registries.
        self.metric_fragments: dict[int, MetricsRegistry] = {}
        #: Deferred recovery observations: sid -> [(fault, backoff, wasted)].
        self._recovery_log: dict[int, list] = {}
        self._lock = threading.Lock()

    # ------------------------------------------------------------------
    def seed_sources(self, inputs: dict[str, np.ndarray]) -> None:
        """Checkpoint every source vertex's stored matrix from ``inputs``."""
        for v in self.sgraph.plan.graph.sources:
            if v.name not in inputs:
                raise KeyError(f"no input provided for source {v.name!r}")
            self.lineage.record(v.vid, split(inputs[v.name], v.mtype,
                                             v.format, self.cluster))

    def value_of(self, ref) -> StoredMatrix:
        """Resolve an :data:`~repro.engine.stages.ArgRef` to its matrix."""
        kind, key = ref
        if kind == "stage":
            return self.stage_values[key]
        return self.lineage.matrices[key]

    # ------------------------------------------------------------------
    def run_stage(self, stage: StageNode) -> None:
        """Run one stage to completion, retrying injected faults.

        The stage charges a private sub-ledger; every failed attempt's
        partial charges are re-labelled as recovery cost, a capped
        exponential backoff is charged, and the stage re-runs from its
        (still checkpointed) inputs.  Recovery observations are deferred
        to :meth:`merge_into` so statistics accumulate in stage-id order
        no matter which thread ran the stage.

        Re-running an already-recorded stage (the dynamics layer does this
        when a worker death loses the stage's output) keeps the earlier
        records in the stage's fragment — the lost attempt's charges stay
        on the clock under whatever category the caller re-labelled them.
        """
        sub = TrafficLedger(self.cluster, self.ctx.weights)
        engine = RelationalEngine(
            self.cluster, sub, faults=self.injector,
            speculative_backups=(self.policy.speculative_backups
                                 and self.speculation is None))
        with self._lock:
            prior = self.records.get(stage.sid)
            if prior:
                sub.stages.extend(prior)
            self.records[stage.sid] = sub.stages
        span = self.tracer.span(stage.name, kind="stage",
                                parent=self.parent_span,
                                stage_id=stage.sid, stage_kind=stage.kind,
                                predicted_seconds=stage.seconds)
        effective: float | None = None
        spec_outcome: str | None = None
        log: list = []
        try:
            with span:
                result, attempt, mark = _run_attempts(
                    stage, self.value_of, sub, engine, self.policy, span,
                    log, self.cluster)
                if self._deadline_multiplier is not None:
                    result, effective, spec_outcome = _speculate(
                        stage, self.value_of, sub, engine, span, mark,
                        result, self._deadline_multiplier, self.cluster)
                span.set(retries=attempt,
                         measured_seconds=sub.total_seconds)
        finally:
            if log:
                with self._lock:
                    self._recovery_log.setdefault(stage.sid, []).extend(log)
            if self.metrics is not None:
                self._record_stage_metrics(stage, sub.stages, len(log),
                                           spec_outcome)
        with self._lock:
            if isinstance(stage, TransformStage):
                self.stage_values[stage.sid] = result
            else:
                self.lineage.record(stage.vertex, result)
            self.completed.add(stage.sid)
            self.effective_seconds[stage.sid] = (
                effective if effective is not None else sub.total_seconds)

    def effective_critical_path(self) -> float:
        """Makespan of the ASAP schedule under *effective* stage durations
        (speculation winners finish at their winning time, not after the
        full straggler wait)."""
        return self.sgraph.asap(seconds=self.effective_seconds).makespan

    def _record_stage_metrics(self, stage: StageNode, records,
                              retries: int,
                              spec_outcome: str | None = None) -> None:
        """Build this stage's private metric fragment from its records.

        All values derive from the stage's sub-ledger records and the
        deterministic fault draws, never from wall-clock or thread timing —
        which is what makes the merged registry bit-identical across
        schedulers.
        """
        frag = MetricsRegistry()
        frag.count("execute.stages")
        frag.count("execute.attempts", retries + 1)
        if retries:
            frag.count("execute.retries", retries)
        if spec_outcome is not None:
            frag.count("execute.speculations")
            if spec_outcome == "won":
                frag.count("execute.speculation_wins")
        work = recovery = shuffled = tuples = 0.0
        for rec in records:
            if rec.category == WORK:
                work += rec.seconds
                shuffled += rec.features.network_bytes
                tuples += rec.features.tuples
            else:
                recovery += rec.seconds
        frag.count("execute.kernel_seconds", work)
        frag.count("execute.bytes_shuffled", shuffled)
        frag.count("execute.tuples", tuples)
        if recovery:
            frag.count("execute.recovery_seconds", recovery)
        frag.observe("execute.stage_seconds", work)
        frag.gauge("execute.max_stage_seconds", work)
        with self._lock:
            self.metric_fragments[stage.sid] = frag

    # ------------------------------------------------------------------
    # Process-pool support
    # ------------------------------------------------------------------
    def stage_job(self, stage: StageNode) -> _StageJob:
        """Build the picklable description of one stage run.

        Input matrices are resolved here, in the parent — the child has no
        lineage or stage-value maps — and the live injector travels with
        the job (its per-stage-name counts are exactly the state the
        child's draws derive from).
        """
        if isinstance(stage, TransformStage):
            refs: tuple = (("vertex", stage.edge.src),)
        else:
            assert isinstance(stage, OpStage)
            refs = stage.args
        inputs = {ref: self.value_of(ref) for ref in refs}
        with self._lock:
            prior = tuple(self.records.get(stage.sid) or ())
        return _StageJob(
            stage=stage, inputs=inputs, prior=prior, cluster=self.cluster,
            weights=self.ctx.weights, policy=self.policy,
            injector=self.injector,
            deadline_multiplier=self._deadline_multiplier,
            speculative_backups=(self.policy.speculative_backups
                                 and self.speculation is None))

    def complete_stage(self, stage: StageNode, out: _StageOutcome) -> None:
        """Record a successful child outcome's result so dependent stages
        (and the final assembly) can consume it; mirrors the tail of
        :meth:`run_stage`."""
        with self._lock:
            if isinstance(stage, TransformStage):
                self.stage_values[stage.sid] = out.result
            else:
                self.lineage.record(stage.vertex, out.result)
            self.completed.add(stage.sid)
            self.effective_seconds[stage.sid] = (
                out.effective if out.effective is not None
                else out.measured_seconds)

    def absorb_outcome(self, stage: StageNode, out: _StageOutcome) -> None:
        """Fold a child outcome's records, recovery log, metric fragment
        and stage span into the shared state.

        Callers absorb outcomes in stage-id order, which makes every
        derived sequence (ledger splice, recovery statistics, metric
        merge) identical to the sequential scheduler's.  The child's
        records *replace* this stage's entry — they already start with the
        ``prior`` records the job carried.
        """
        with self._lock:
            self.records[stage.sid] = list(out.records)
            if out.recovery_log:
                self._recovery_log.setdefault(stage.sid, []) \
                    .extend(out.recovery_log)
        with self.tracer.span(stage.name, kind="stage",
                              parent=self.parent_span,
                              stage_id=stage.sid, stage_kind=stage.kind,
                              predicted_seconds=stage.seconds) as span:
            # Re-emit the child's nested spans (it ran under a null tracer)
            # so the span tree — and hence every span id — matches the
            # in-process schedulers.  On retry exhaustion every try ended
            # in a fault (one log entry each); otherwise the last try
            # opened an attempt span too.
            tries = (out.retries
                     if isinstance(out.error, FaultRetriesExhausted)
                     else out.retries + 1)
            for n in range(tries):
                with span.span("attempt", kind="attempt", n=n):
                    pass
            if out.spec_outcome is not None:
                with span.span("backup", kind="speculate") as bspan:
                    bspan.set(outcome=out.spec_outcome)
            if out.error is None:
                span.set(retries=out.retries,
                         measured_seconds=out.measured_seconds)
        if self.metrics is not None:
            self._record_stage_metrics(stage, out.records, out.retries,
                                       out.spec_outcome)

    # ------------------------------------------------------------------
    def merge_into(self, ledger: TrafficLedger) -> list[str]:
        """Splice sub-ledgers into ``ledger`` in stage-id order.

        Also folds the deferred recovery log into ``self.stats`` and the
        lineage recomputation counts, in the same deterministic order.
        Returns the names of the stages that ran (i.e. were lowered *and*
        started), for stage-set comparisons against simulation.
        """
        executed: list[str] = []
        for sid in ledger.splice(self.records):
            executed.append(self.sgraph.stages[sid].name)
            for fault, backoff, wasted, retried in \
                    self._recovery_log.get(sid, ()):
                self.stats.observe(fault, backoff, wasted)
                if retried:
                    self.lineage.note_recomputation(
                        self.sgraph.stages[sid].vertex)
        if self.lineage.recomputations:
            self.stats.recomputed_vertices = len(self.lineage.recomputations)
        if self.metrics is not None:
            self.metrics.merge_fragments(self.metric_fragments)
        return executed


# ======================================================================
# Strategies
# ======================================================================
class Scheduler:
    """Strategy interface: run stages of ``state``'s graph.

    :meth:`run` runs everything not yet completed (a fresh execution, or
    the pending remainder after a checkpoint resume); :meth:`run_stages`
    runs an explicit subset — dependencies *outside* the subset are taken
    as already satisfied, which is how the dynamics layer drives one
    frontier at a time and how lost stages are re-run.
    """

    name = "scheduler"

    def run(self, state: ExecutionState) -> None:
        self.run_stages(state, [s.sid for s in state.sgraph.stages
                                if s.sid not in state.completed])

    def run_stages(self, state: ExecutionState, sids) -> None:
        raise NotImplementedError


class SequentialScheduler(Scheduler):
    """One stage at a time, in stage-id order (the historical executor)."""

    name = "sequential"

    def run_stages(self, state: ExecutionState, sids) -> None:
        for sid in sorted(sids):
            state.run_stage(state.sgraph.stages[sid])


class ThreadPoolScheduler(Scheduler):
    """Run independent stages concurrently on a thread pool.

    Dispatches stages as their dependencies complete (smallest ready
    stage id first).  After any failure no new stages are dispatched;
    already-running stages drain, and the failure with the smallest stage
    id is re-raised — the same stage the sequential scheduler would have
    died on, because stage outcomes are order-independent.
    """

    name = "thread-pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def run_stages(self, state: ExecutionState, sids) -> None:
        stages = state.sgraph.stages
        todo = set(sids)
        if not todo:
            return
        # Dependencies outside the subset were satisfied by earlier calls
        # (or restored from a checkpoint) — only intra-subset edges gate.
        waiting_on = {sid: sum(1 for d in stages[sid].deps if d in todo)
                      for sid in todo}
        dependents: dict[int, list[int]] = {sid: [] for sid in todo}
        for sid in todo:
            for dep in stages[sid].deps:
                if dep in todo:
                    dependents[dep].append(sid)
        ready = sorted(sid for sid, n in waiting_on.items() if n == 0)
        failures: dict[int, BaseException] = {}

        with ThreadPoolExecutor(max_workers=self.max_workers) as pool:
            running = {}

            def dispatch() -> None:
                while ready and not failures:
                    sid = ready.pop(0)
                    running[pool.submit(state.run_stage, stages[sid])] = sid

            dispatch()
            while running:
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    sid = running.pop(future)
                    error = future.exception()
                    if error is not None:
                        failures[sid] = error
                        continue
                    for child in dependents[sid]:
                        waiting_on[child] -= 1
                        if waiting_on[child] == 0:
                            ready.append(child)
                ready.sort()
                dispatch()

        if failures:
            raise failures[min(failures)]


class ProcessPoolScheduler(Scheduler):
    """Run independent stages concurrently in worker *processes*.

    Each ready stage is shipped to a child process as a picklable
    :class:`_StageJob` — the stage node (whose kernel thunk is a
    :class:`~repro.engine.stages.BoundKernel`), its already-resolved input
    matrices, the recovery policy and the fault injector — and the child
    runs the exact same retry/speculation core the in-process schedulers
    use, charging a private sub-ledger.  Outcomes are folded back in
    **stage-id order** once the pool drains: ledger records, recovery
    statistics, metric fragments and injected-fault bookkeeping all merge
    deterministically, so results, ledgers and registries are bit-identical
    to :class:`SequentialScheduler` (fault determinism holds because every
    draw is a pure function of ``(seed, stage name, occurrence)`` and each
    stage's injector names are touched only by that stage).

    Dispatch mirrors :class:`ThreadPoolScheduler`: smallest ready stage id
    first, no new dispatches after a failure, and the failure with the
    smallest stage id is re-raised.  Failed stages' partial charges are
    still absorbed, exactly as a failed in-process ``run_stage`` leaves
    its records behind.
    """

    name = "process-pool"

    def __init__(self, max_workers: int | None = None) -> None:
        self.max_workers = max_workers

    def run_stages(self, state: ExecutionState, sids) -> None:
        stages = state.sgraph.stages
        todo = set(sids)
        if not todo:
            return
        waiting_on = {sid: sum(1 for d in stages[sid].deps if d in todo)
                      for sid in todo}
        dependents: dict[int, list[int]] = {sid: [] for sid in todo}
        for sid in todo:
            for dep in stages[sid].deps:
                if dep in todo:
                    dependents[dep].append(sid)
        ready = sorted(sid for sid, n in waiting_on.items() if n == 0)
        failures: dict[int, BaseException] = {}
        outcomes: dict[int, _StageOutcome] = {}
        base_events = (len(state.injector.events)
                       if state.injector is not None else 0)

        with ProcessPoolExecutor(max_workers=self.max_workers) as pool:
            running: dict = {}

            def dispatch() -> None:
                while ready and not failures:
                    sid = ready.pop(0)
                    running[pool.submit(_run_stage_job,
                                        state.stage_job(stages[sid]))] = sid

            dispatch()
            while running:
                done, _ = wait(running, return_when=FIRST_COMPLETED)
                for future in done:
                    sid = running.pop(future)
                    error = future.exception()
                    if error is not None:
                        # Infrastructure failure (broken pool, unpicklable
                        # payload) — no outcome to absorb.
                        failures[sid] = error
                        continue
                    out = future.result()
                    outcomes[sid] = out
                    if out.error is not None:
                        failures[sid] = out.error
                        continue
                    state.complete_stage(stages[sid], out)
                    for child in dependents[sid]:
                        waiting_on[child] -= 1
                        if waiting_on[child] == 0:
                            ready.append(child)
                ready.sort()
                dispatch()

        # Deterministic fold: every outcome (including failed stages'
        # partial charges) merges in stage-id order, so the final state is
        # independent of which child finished first.
        for sid in sorted(outcomes):
            state.absorb_outcome(stages[sid], outcomes[sid])
            cursor = outcomes[sid].injector_cursor
            if state.injector is not None and cursor is not None:
                state.injector.absorb(cursor, base_events=base_events)
        if failures:
            raise failures[min(failures)]


DEFAULT_SCHEDULER = SequentialScheduler()

#: Canonical scheduler knob values, in the order docs present them.
SCHEDULERS = ("sequential", "thread-pool", "process-pool")

_SCHEDULER_ALIASES: dict[str, type] = {
    "sequential": SequentialScheduler,
    "seq": SequentialScheduler,
    "thread-pool": ThreadPoolScheduler,
    "threads": ThreadPoolScheduler,
    "thread": ThreadPoolScheduler,
    "process-pool": ProcessPoolScheduler,
    "processes": ProcessPoolScheduler,
    "process": ProcessPoolScheduler,
}


def resolve_scheduler(spec) -> Scheduler:
    """Coerce a scheduler knob value into a :class:`Scheduler`.

    ``None`` means the default (sequential); a :class:`Scheduler` instance
    passes through; a string resolves through the alias table
    (``"sequential"``/``"seq"``, ``"thread-pool"``/``"threads"``,
    ``"process-pool"``/``"processes"``).  Anything else raises a clear
    ``ValueError`` up front — mirroring the ``rewrites=`` and ``frontier=``
    knob handling — instead of failing deep inside a run.
    """
    if spec is None:
        return SequentialScheduler()
    if isinstance(spec, Scheduler):
        return spec
    if isinstance(spec, str):
        cls = _SCHEDULER_ALIASES.get(spec)
        if cls is None:
            raise ValueError(f"unknown scheduler {spec!r}; expected one of "
                             f"{SCHEDULERS} (or aliases 'seq', 'threads', "
                             f"'processes') or a Scheduler instance")
        return cls()
    raise ValueError(f"cannot build a scheduler from {spec!r}; expected "
                     f"None, a Scheduler instance, or one of {SCHEDULERS}")
