"""Tests for MNC-sketch graph refinement."""

import numpy as np
import pytest

from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import ELEM_MUL, MATMUL, SOFTMAX, TRANSPOSE
from repro.core.formats import single
from repro.cost.refine import (
    SketchPropagationError,
    propagate_sketches,
    refine_graph,
    sketches_from_inputs,
)
from repro.cost.sparsity import MncSketch, observed_sparsity, relative_error

RNG = np.random.default_rng(21)


def _skewed(rows, cols, seed):
    rng = np.random.default_rng(seed)
    density = rng.random(rows) ** 3
    return rng.standard_normal((rows, cols)) * \
        (rng.random((rows, cols)) < density[:, None])


def _chain_graph(n=60):
    g = ComputeGraph()
    a = g.add_source("A", matrix(n, n, 0.3), single())
    b = g.add_source("B", matrix(n, n, 0.3), single())
    ab = g.add_op("AB", MATMUL, (a, b))
    m = g.add_op("M", ELEM_MUL, (ab, a))
    g.add_op("out", MATMUL, (m, b))
    return g


class TestPropagation:
    def test_uniform_fallback_for_missing_sources(self):
        g = _chain_graph()
        sketches = propagate_sketches(g, {})
        assert sketches[0].sparsity == pytest.approx(0.3)

    def test_shape_mismatch_rejected(self):
        g = _chain_graph()
        with pytest.raises(SketchPropagationError):
            propagate_sketches(g, {"A": MncSketch.from_type(matrix(3, 3))})

    def test_all_vertices_covered(self):
        g = _chain_graph()
        sketches = propagate_sketches(g, {})
        assert set(sketches) == set(g.vertex_ids)

    def test_unary_rules(self):
        g = ComputeGraph()
        a = g.add_source("A", matrix(20, 30, 0.1), single())
        t = g.add_op("T", TRANSPOSE, (a,))
        s = g.add_op("S", SOFTMAX, (t,))
        sketches = propagate_sketches(g, {})
        assert (sketches[t].rows, sketches[t].cols) == (30, 20)
        assert sketches[s].sparsity == 1.0

    def test_refined_estimates_beat_scalar_on_structured_data(self):
        """The point of the Sommer et al. integration (paper Section 7)."""
        n = 60
        a = _skewed(n, n, seed=1)
        b = _skewed(n, n, seed=2)
        g = _chain_graph(n)
        refined = refine_graph(g, sketches_from_inputs({"A": a, "B": b}))

        true_ab = observed_sparsity(a @ b)
        scalar_est = g.vertex(2).mtype.sparsity       # the built-in scalar
        mnc_est = refined.vertex(2).mtype.sparsity
        assert relative_error(mnc_est, true_ab) <= \
            relative_error(scalar_est, true_ab)


class TestRefineGraph:
    def test_structure_preserved(self):
        g = _chain_graph()
        refined = refine_graph(g, {})
        assert len(refined) == len(g)
        assert [v.name for v in refined.vertices] == \
            [v.name for v in g.vertices]
        assert [v.format for v in refined.sources] == \
            [v.format for v in g.sources]

    def test_outputs_preserved(self):
        g = _chain_graph()
        refined = refine_graph(g, {})
        assert [v.name for v in refined.outputs] == \
            [v.name for v in g.outputs]

    def test_refined_graph_optimizes_and_executes(self):
        n = 50
        a = _skewed(n, n, seed=5)
        b = _skewed(n, n, seed=6)
        g = _chain_graph(n)
        refined = refine_graph(g, sketches_from_inputs({"A": a, "B": b}))
        ctx = OptimizerContext()
        plan = optimize(refined, ctx)
        from repro.engine import execute_plan
        result = execute_plan(plan, {"A": a, "B": b}, ctx)
        ref = ((a @ b) * a) @ b
        assert np.allclose(result.output(), ref)

    def test_sparsity_changes_plan_cost(self):
        """Refinement with very sparse inputs should reduce the predicted
        cost relative to claiming everything dense."""
        from repro.core.formats import tiles
        g = ComputeGraph()
        x = g.add_source("X", matrix(20_000, 50_000, 1.0), tiles(1000))
        w = g.add_source("W", matrix(50_000, 2000), single())
        g.add_op("out", MATMUL, (x, w))
        ctx = OptimizerContext()
        dense_plan = optimize(g, ctx)
        sparse_sketch = MncSketch.from_type(
            matrix(20_000, 50_000, 0.0005))
        refined = refine_graph(g, {"X": sparse_sketch})
        sparse_plan = optimize(refined, OptimizerContext())
        assert sparse_plan.total_seconds < dense_plan.total_seconds
