"""Fig 5 / Experiment 1: FFNN forward + full backprop + forward, hidden 80K.

Regenerates the three-way plan comparison on the 57-vertex compute graph
and benchmarks the frontier optimizer on it (the paper's reported
optimization time for this graph is 1:03).
"""

import pytest

from conftest import parse_cell
from repro.cluster import simsql_cluster
from repro.core import OptimizerContext, optimize
from repro.experiments.figures import FFNN_BEAM, fig05
from repro.workloads.ffnn import FFNNConfig, ffnn_full_step


@pytest.fixture(scope="module")
def table():
    return fig05()


def test_fig05_regenerate(benchmark, table, print_table):
    print_table(table)
    graph = ffnn_full_step(FFNNConfig(hidden=80_000))
    assert len(graph) == 57  # the paper's graph size

    def optimize_once():
        return optimize(graph, OptimizerContext(cluster=simsql_cluster(10)),
                        max_states=FFNN_BEAM)

    benchmark.pedantic(optimize_once, rounds=1, iterations=1)

    auto = parse_cell(table.cell("Auto-gen", "time"))
    hand = parse_cell(table.cell("Hand-written", "time"))
    tile = parse_cell(table.cell("All-tile", "time"))
    # Paper: the auto-generated plan clearly beats both baselines
    # (0:59 vs 1:25 and 1:54).  Our model ranks hand and all-tile within
    # noise of each other at this size, so only the headline is asserted.
    assert auto < hand
    assert auto < tile
    assert min(hand, tile) > 1.1 * auto
