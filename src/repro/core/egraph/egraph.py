"""An e-graph over logical compute graphs.

An *e-graph* (equality graph) compactly represents a congruence relation
over terms: every **e-class** is a set of equivalent **e-nodes**, and every
e-node's children point at e-classes rather than concrete terms, so one
e-graph of ``n`` nodes can stand for exponentially many equivalent
expression trees.  Equality saturation (Tate et al.; SPORES for linear
algebra) grows the e-graph by applying rewrite rules non-destructively and
then *extracts* the cheapest represented term — sidestepping the
phase-ordering problem of an ordered pass pipeline.

The implementation follows the classic egg recipe:

* **hash-consing** (:attr:`EGraph._hashcons`) maps each canonical e-node to
  its e-class, which makes common-subexpression elimination free at
  construction time;
* a **union-find** over integer e-class ids implements merging, always
  keeping the *smallest* id as the canonical root so the result never
  depends on Python's hash seed;
* a **deterministic worklist** drives congruence-closure
  :meth:`EGraph.rebuild`: merged classes are queued, and repair processes
  them in sorted-id order, re-canonicalizing parent e-nodes and merging
  classes that have become congruent.

Everything iterates over insertion-ordered dicts or sorted integer ids —
never over sets or ``hash()``-ordered structures — so saturation and
extraction are bit-reproducible across ``PYTHONHASHSEED`` values.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..atoms import atom_by_name
from ..formats import PhysicalFormat
from ..graph import ComputeGraph, GraphError
from ..types import MatrixType


class EGraphError(GraphError):
    """Raised when the e-graph is driven into an inconsistent state."""


@dataclass(frozen=True)
class ENode:
    """One operator application over e-classes (or a source leaf).

    ``op`` is the atomic-computation name (including fused-atom names) or
    the sentinel ``"src"`` for source leaves; ``children`` are e-class ids;
    ``param`` carries the scalar constant of ``scalar_mul`` vertices;
    ``src`` is the identity key of a source leaf (name + type + format) and
    ``None`` for operator nodes.
    """

    op: str
    children: tuple[int, ...] = ()
    param: float | None = None
    src: tuple | None = None

    @property
    def is_source(self) -> bool:
        return self.src is not None


@dataclass
class EClass:
    """One equivalence class of e-nodes."""

    cid: int
    #: Insertion-ordered set of member e-nodes (values unused).
    nodes: dict[ENode, None] = field(default_factory=dict)
    #: Parent e-nodes that reference this class, with their owning class id
    #: at registration time (re-canonicalized during ``rebuild``).
    parents: list[tuple[ENode, int]] = field(default_factory=list)
    #: Inferred matrix type; merged classes keep the shape (asserted equal)
    #: and the minimum sparsity estimate.
    mtype: MatrixType | None = None
    #: ``(name, mtype, format)`` when the class contains a source leaf.
    source: tuple[str, MatrixType, PhysicalFormat] | None = None
    #: Best-effort vertex name for extraction (first seen wins; declared
    #: output names override).
    name: str | None = None


def _source_key(name: str, mtype: MatrixType,
                fmt: PhysicalFormat) -> tuple:
    return ("src", name, mtype.dims, mtype.sparsity, fmt.layout.value,
            fmt.block_rows, fmt.block_cols)


class EGraph:
    """A growable e-graph over :class:`~repro.core.graph.ComputeGraph` terms."""

    def __init__(self) -> None:
        self._parent: dict[int, int] = {}
        self._classes: dict[int, EClass] = {}
        self._hashcons: dict[ENode, int] = {}
        self._worklist: list[int] = []
        self._next_id = 0
        #: ``(e-class id, output name)`` per declared output of the seed
        #: graph, in declaration order.
        self.roots: tuple[tuple[int, str], ...] = ()
        #: Vertices merged away by hash-consing while seeding (free CSE).
        self.cse_merges = 0
        #: Growth caps enforced *inside* :meth:`add_op` (budgets checked
        #: only between rules cannot stop one explosive rule sweep): once
        #: the node cap or the deadline is hit, new-node adds return None
        #: while merges of existing nodes continue — stopping early is
        #: always safe because the seed term is never removed.
        self.growth_limit: int | None = None
        self.deadline: float | None = None

    # ------------------------------------------------------------------
    # Union-find
    # ------------------------------------------------------------------
    def find(self, cid: int) -> int:
        root = cid
        while self._parent[root] != root:
            root = self._parent[root]
        while self._parent[cid] != root:  # path compression
            self._parent[cid], cid = root, self._parent[cid]
        return root

    def class_of(self, cid: int) -> EClass:
        return self._classes[self.find(cid)]

    def class_ids(self) -> tuple[int, ...]:
        """Canonical e-class ids in ascending order (deterministic)."""
        return tuple(sorted(self._classes))

    def nodes_of(self, cid: int) -> tuple[ENode, ...]:
        """Member e-nodes of a class, in insertion order."""
        return tuple(self.class_of(cid).nodes)

    @property
    def n_classes(self) -> int:
        return len(self._classes)

    @property
    def n_nodes(self) -> int:
        return sum(len(c.nodes) for c in self._classes.values())

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def canonicalize(self, node: ENode) -> ENode:
        children = tuple(self.find(c) for c in node.children)
        if children == node.children:
            return node
        return ENode(node.op, children, node.param, node.src)

    def _new_class(self, node: ENode, mtype: MatrixType) -> int:
        cid = self._next_id
        self._next_id += 1
        self._parent[cid] = cid
        cls = EClass(cid, {node: None}, [], mtype)
        self._classes[cid] = cls
        return cid

    def _add(self, node: ENode, mtype: MatrixType) -> int:
        node = self.canonicalize(node)
        hit = self._hashcons.get(node)
        if hit is not None:
            return self.find(hit)
        cid = self._new_class(node, mtype)
        self._hashcons[node] = cid
        for child in dict.fromkeys(node.children):
            self._classes[self.find(child)].parents.append((node, cid))
        return cid

    def add_source(self, name: str, mtype: MatrixType,
                   fmt: PhysicalFormat) -> int:
        node = ENode("src", (), None, _source_key(name, mtype, fmt))
        cid = self._add(node, mtype)
        cls = self._classes[self.find(cid)]
        if cls.source is None:
            cls.source = (name, mtype, fmt)
        return cid

    def add_op(self, op_name: str, children: tuple[int, ...],
               param: float | None = None) -> int | None:
        """Add an operator e-node; returns its e-class, or ``None`` when the
        atomic computation's type function rejects the child types (the
        e-graph analogue of the paper's ⊥) or a growth cap is active and
        the node would be new."""
        children = tuple(self.find(c) for c in children)
        node = ENode(op_name, children, param)
        hit = self._hashcons.get(node)
        if hit is not None:
            return self.find(hit)
        if self._growth_blocked():
            return None
        in_types = []
        for c in children:
            mtype = self._classes[c].mtype
            if mtype is None:
                return None
            in_types.append(mtype)
        op = atom_by_name(op_name)
        out_type = op.out_type(*in_types)
        if out_type is None:
            return None
        return self._add(node, out_type)

    def _growth_blocked(self) -> bool:
        if self.growth_limit is not None and \
                len(self._hashcons) >= self.growth_limit:
            return True
        return self.deadline is not None and \
            time.perf_counter() >= self.deadline

    def set_name(self, cid: int, name: str, override: bool = False) -> None:
        cls = self.class_of(cid)
        if override or cls.name is None:
            cls.name = name

    # ------------------------------------------------------------------
    # Merging + congruence closure
    # ------------------------------------------------------------------
    def merge(self, a: int, b: int) -> bool:
        """Union two e-classes; returns True when they were distinct.

        The smaller canonical id always wins, so merge results are a pure
        function of insertion order (never of ``hash()``).
        """
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return False
        root, other = (ra, rb) if ra < rb else (rb, ra)
        keep, gone = self._classes[root], self._classes[other]
        self._merge_types(keep, gone)
        keep.nodes.update(gone.nodes)
        keep.parents.extend(gone.parents)
        if keep.source is None:
            keep.source = gone.source
        if keep.name is None:
            keep.name = gone.name
        self._parent[other] = root
        del self._classes[other]
        self._worklist.append(root)
        return True

    @staticmethod
    def _merge_types(keep: EClass, gone: EClass) -> None:
        a, b = keep.mtype, gone.mtype
        if a is None or b is None:
            keep.mtype = a or b
            return
        if a.dims != b.dims:
            raise EGraphError(
                f"merging e-classes of different shapes: {a} vs {b} "
                "(a rewrite rule equated non-equal terms)")
        # Equivalent terms may carry different sparsity *estimates* (e.g.
        # (AB)C vs A(BC)); keep the tighter one for cost guidance.
        if b.sparsity < a.sparsity:
            keep.mtype = b

    def rebuild(self) -> None:
        """Restore congruence closure after a batch of merges.

        Processes the worklist of merged roots in sorted order; for each,
        re-canonicalizes the parent e-nodes, repairs the hashcons, and
        merges classes that own e-nodes which have become identical
        (congruent) — repeating until the worklist drains.
        """
        while self._worklist:
            todo = sorted({self.find(cid) for cid in self._worklist})
            self._worklist.clear()
            for cid in todo:
                if self.find(cid) == cid and cid in self._classes:
                    self._repair(cid)

    def _repair(self, cid: int) -> None:
        cls = self._classes[cid]
        old_parents = cls.parents
        cls.parents = []
        seen: dict[ENode, int] = {}
        for pnode, pcid in old_parents:
            self._hashcons.pop(pnode, None)
            canon = self.canonicalize(pnode)
            pcid = self.find(pcid)
            owner = self._hashcons.get(canon)
            if owner is not None and self.find(owner) != pcid:
                self.merge(owner, pcid)
                pcid = self.find(pcid)
            self._hashcons[canon] = pcid
            dup = seen.get(canon)
            if dup is not None and self.find(dup) != pcid:
                self.merge(dup, pcid)
                pcid = self.find(pcid)
            seen[canon] = pcid
            # Keep the owning class's node set canonical so rule matching
            # and extraction see up-to-date children.
            owner_cls = self._classes[self.find(pcid)]
            owner_cls.nodes.pop(pnode, None)
            owner_cls.nodes[canon] = None
            cls.parents.append((canon, pcid))

    # ------------------------------------------------------------------
    # Seeding from a compute graph
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: ComputeGraph) -> "EGraph":
        """Seed an e-graph with every vertex of ``graph``.

        Hash-consing merges structurally identical vertices on the way in
        (free CSE); the count is recorded in :attr:`cse_merges`.
        """
        eg = cls()
        mapping: dict[int, int] = {}
        for vid in graph.topological_order():
            v = graph.vertex(vid)
            if v.is_source:
                cid = eg.add_source(v.name, v.mtype, v.format)
            else:
                children = tuple(mapping[s] for s in v.inputs)
                maybe = eg.add_op(v.op.name, children, v.param)
                if maybe is None:  # pragma: no cover - graph was typed
                    raise EGraphError(
                        f"vertex {v.name!r} failed to re-type in the e-graph")
                cid = maybe
            mapping[vid] = cid
            eg.set_name(cid, v.name)
        eg.cse_merges = len(graph) - eg.n_classes
        roots = []
        for out in graph.outputs:
            cid = eg.find(mapping[out.vid])
            eg.set_name(cid, out.name, override=True)
            roots.append((cid, out.name))
        eg.roots = tuple(roots)
        return eg
