"""Fig 6 / Experiment 2: FFNN backprop-to-W2 across hidden layer sizes."""

import math

import pytest

from conftest import parse_cell
from repro.cluster import simsql_cluster
from repro.core import OptimizerContext, optimize
from repro.experiments.figures import FFNN_BEAM, fig06
from repro.workloads.ffnn import FFNNConfig, ffnn_backprop_to_w2


@pytest.fixture(scope="module")
def table():
    return fig06()


def test_fig06_regenerate(benchmark, table, print_table):
    print_table(table)
    graph = ffnn_backprop_to_w2(FFNNConfig(hidden=40_000))

    def optimize_once():
        return optimize(graph, OptimizerContext(cluster=simsql_cluster(10)),
                        max_states=FFNN_BEAM)

    benchmark.pedantic(optimize_once, rounds=2, iterations=1)

    for hidden in ("10K", "40K", "80K", "160K"):
        auto = parse_cell(table.cell(hidden, "Auto-gen"))
        hand = parse_cell(table.cell(hidden, "Hand-written"))
        tile = parse_cell(table.cell(hidden, "All-tile"))
        # Auto-generated plans win at every size (paper's core claim).
        assert auto < hand
        assert auto < tile

    # The paper's failure pattern: all-tile collapses at hidden 160K.
    assert math.isinf(parse_cell(table.cell("160K", "All-tile")))
    assert math.isfinite(parse_cell(table.cell("160K", "Hand-written")))
    assert math.isfinite(parse_cell(table.cell("160K", "Auto-gen")))

    # Runtime grows with the hidden size for every plan.
    autos = [parse_cell(table.cell(h, "Auto-gen"))
             for h in ("10K", "40K", "80K", "160K")]
    assert autos == sorted(autos)
