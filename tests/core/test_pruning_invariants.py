"""Pruning invariants across every workload family.

The dominance prune is advertised as *lossless*: on any input it must
return exactly the same plan — total cost and per-vertex stored formats —
as the unpruned exact search, differing only in search effort.  These tests
pin that claim on every workload family shipped in ``src/repro/workloads``
(FFNN, attention, block inverse, chains/scaling DAGs, ML algorithms),
using a reduced format catalog so the unpruned joint tables stay tractable.
"""

import math

import pytest

from repro.core import OptimizerContext
from repro.core.formats import col_strips, row_strips, single, tiles
from repro.core.frontier import FrontierStats, optimize_dag
from repro.workloads import (
    AttentionConfig,
    FFNNConfig,
    attention_graph,
    dag1_graph,
    dag2_graph,
    ffnn_backprop_to_w2,
    ffnn_forward,
    linear_regression,
    logistic_regression_step,
    mm_chain_graph,
    motivating_graph,
    power_iteration,
    ridge_gradient_descent,
    tree_graph,
    two_level_inverse_graph,
    wide_shared_dag,
)

#: Reduced catalog: keeps the *unpruned* exact search tractable on the
#: 45-vertex inverse graph while still exercising format choice.
CATALOG = (single(), tiles(1000), row_strips(1000), col_strips(1000))

WORKLOADS = {
    "ffnn_forward": lambda: ffnn_forward(FFNNConfig(hidden=8000)),
    "ffnn_backprop": lambda: ffnn_backprop_to_w2(FFNNConfig(hidden=8000)),
    "attention": lambda: attention_graph(AttentionConfig()),
    "inverse": two_level_inverse_graph,
    "motivating": motivating_graph,
    "mm_chain_set1": lambda: mm_chain_graph(1),
    "dag1_scale2": lambda: dag1_graph(2),
    "dag2_scale2": lambda: dag2_graph(2),
    "tree_scale2": lambda: tree_graph(2),
    "wide_shared": lambda: wide_shared_dag(3, 3),
    "ml_linear_regression": lambda: linear_regression(4000, 500).graph,
    "ml_logistic_regression":
        lambda: logistic_regression_step(4000, 500).graph,
    "ml_ridge_gd": lambda: ridge_gradient_descent(4000, 500).graph,
    "ml_power_iteration": lambda: power_iteration(3000).graph,
}


def _ctx() -> OptimizerContext:
    return OptimizerContext(formats=CATALOG)


@pytest.mark.parametrize("name", sorted(WORKLOADS))
def test_prune_is_lossless_on_workload(name):
    """Same total cost AND same per-vertex formats, pruned vs unpruned."""
    graph = WORKLOADS[name]()
    pruned_stats, plain_stats = FrontierStats(), FrontierStats()
    pruned = optimize_dag(graph, _ctx(), stats=pruned_stats, prune=True)
    plain = optimize_dag(graph, _ctx(), stats=plain_stats, prune=False)

    assert math.isclose(pruned.total_seconds, plain.total_seconds,
                        rel_tol=1e-9), f"{name}: pruned cost differs"
    assert pruned.cost.vertex_formats == plain.cost.vertex_formats, \
        f"{name}: pruned plan chose different per-vertex formats"

    # When nothing was pruned the searches must have been identical —
    # same table growth, same states examined.
    if pruned_stats.states_pruned == 0:
        assert pruned_stats.max_table_size == plain_stats.max_table_size
        assert pruned_stats.states_examined == plain_stats.states_examined


@pytest.mark.parametrize("order", ["class-size", "table-size"])
def test_orders_agree_on_cost(order):
    """Both sweep-order heuristics are exact: identical optimal cost."""
    graph = wide_shared_dag(3, 3)
    base = optimize_dag(graph, _ctx(), order="class-size")
    other = optimize_dag(graph, _ctx(), order=order)
    assert math.isclose(base.total_seconds, other.total_seconds,
                        rel_tol=1e-9)


def test_profile_attached_and_consistent():
    """Plans carry an OptimizerProfile whose counters match the stats."""
    graph = attention_graph(AttentionConfig())
    stats = FrontierStats()
    plan = optimize_dag(graph, _ctx(), stats=stats, prune=True)
    prof = plan.profile
    assert prof is not None and prof.algorithm == "frontier"
    assert prof.states_explored == stats.states_examined
    assert prof.states_pruned == stats.states_pruned
    assert prof.peak_table_size == stats.max_table_size
    assert tuple(stats.sweep_order) == prof.sweep_order
    assert set(prof.sweep_order) == \
        {v.vid for v in graph.inner_vertices}
    assert "project" in prof.phase_seconds
    assert prof.describe()  # renders without error
