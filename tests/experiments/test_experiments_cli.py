"""Tests for the experiments CLI (python -m repro.experiments)."""

import pytest

from repro.experiments.__main__ import main


def test_list_prints_registry(capsys):
    assert main(["--list"]) == 0
    out = capsys.readouterr().out
    assert "fig01" in out
    assert "fig13" in out
    assert "ext_gpu_catalog" in out


def test_no_selection_errors():
    with pytest.raises(SystemExit):
        main([])


def test_unknown_experiment_errors():
    with pytest.raises(SystemExit):
        main(["--fig", "fig99"])


def test_single_figure_runs_and_writes(tmp_path, capsys):
    out_file = tmp_path / "tables.md"
    assert main(["--fig", "ext_gpu_catalog", "--out", str(out_file)]) == 0
    printed = capsys.readouterr().out
    assert "ext_gpu_catalog" in printed
    assert "ext_gpu_catalog" in out_file.read_text()


def test_repeated_figs(capsys):
    assert main(["--fig", "ext_gpu_catalog", "--fig",
                 "ext_gpu_catalog"]) == 0
    out = capsys.readouterr().out
    assert out.count("## ext_gpu_catalog") == 2
