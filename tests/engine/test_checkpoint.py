"""Durable checkpoint/resume: bit-identical continuation at any frontier.

The core claim: interrupt an execution at any stage-graph frontier,
serialize the quiescent state to JSON, deserialize it (possibly in
another process), resume — and the final ledger's record stream, every
float total, the recovery statistics, and the numerical outputs are all
*bit-identical* to the run that was never interrupted.  JSON floats
round-trip exactly (``repr``-based), which is what makes this a float
equality claim rather than an approximate one.
"""

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import ComputeGraph, OptimizerContext, matrix, optimize
from repro.core.atoms import ADD, ELEM_MUL, MATMUL, RELU, SUB
from repro.core.formats import row_strips, single, tiles
from repro.engine import execute_plan
from repro.engine.checkpoint import (
    CheckpointError,
    ExecutionCheckpoint,
    plan_fingerprint,
    restore_into,
    resume,
    run_to_frontier,
)
from repro.engine.faults import FaultConfig, FaultPlan
from repro.engine.scheduler import (
    ExecutionState,
    SequentialScheduler,
    ThreadPoolScheduler,
)
from repro.engine.stages import lower

OPS = (MATMUL, ADD, SUB, ELEM_MUL, RELU)
FAULTS = FaultConfig(seed=11, crash_probability=0.15,
                     straggler_probability=0.2, max_faults_per_stage=2)


def _small_case(seed=0):
    rng = np.random.default_rng(seed)
    g = ComputeGraph()
    a = g.add_source("A", matrix(24, 24), tiles(12))
    b = g.add_source("B", matrix(24, 24), row_strips(8))
    h1 = g.add_op("h1", MATMUL, (a, b))
    h2 = g.add_op("h2", RELU, (h1,))
    h3 = g.add_op("h3", ADD, (h2, a))
    g.add_op("out", MATMUL, (h3, b))
    inputs = {"A": rng.standard_normal((24, 24)),
              "B": rng.standard_normal((24, 24))}
    return g, inputs


def _ledger_key(result):
    return [(r.name, r.seconds, r.category) for r in result.ledger.stages]


class TestRoundTrip:
    def test_json_round_trip_is_exact(self):
        g, inputs = _small_case()
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        ckpt = run_to_frontier(plan, inputs, ctx, 2, faults=FAULTS)
        back = ExecutionCheckpoint.loads(ckpt.dumps(), ctx.cluster)
        assert back.fingerprint == ckpt.fingerprint
        assert back.completed == ckpt.completed
        assert back.effective_seconds == ckpt.effective_seconds
        for sid, recs in ckpt.records.items():
            got = back.records[sid]
            assert [(r.name, r.seconds, r.category) for r in recs] == \
                   [(r.name, r.seconds, r.category) for r in got]
        for vid, stored in ckpt.lineage.items():
            for key, payload in stored.relation.rows.items():
                other = back.lineage[vid].relation.rows[key]
                assert np.array_equal(np.asarray(payload.toarray()
                                                 if hasattr(payload,
                                                            "toarray")
                                                 else payload),
                                      np.asarray(other.toarray()
                                                 if hasattr(other,
                                                            "toarray")
                                                 else other))

    def test_save_load_file(self, tmp_path):
        g, inputs = _small_case()
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        ckpt = run_to_frontier(plan, inputs, ctx, 1)
        path = ckpt.save(tmp_path / "ck.json")
        back = ExecutionCheckpoint.load(path, ctx.cluster)
        assert back.completed == ckpt.completed

    def test_fingerprint_guards_against_wrong_plan(self):
        g, inputs = _small_case()
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        ckpt = run_to_frontier(plan, inputs, ctx, 1)

        g2 = ComputeGraph()
        a = g2.add_source("A", matrix(24, 24), tiles(12))
        g2.add_op("out", RELU, (a,))
        plan2 = optimize(g2, ctx, max_states=200)
        sgraph2 = lower(plan2, ctx)
        state = ExecutionState(sgraph2, ctx, injector=None,
                               policy=__import__(
                                   "repro.engine.recovery",
                                   fromlist=["DEFAULT_RECOVERY"]
                               ).DEFAULT_RECOVERY)
        with pytest.raises(CheckpointError, match="stage DAGs differ"):
            restore_into(ckpt, state)
        assert plan_fingerprint(sgraph2) != ckpt.fingerprint


class TestBitIdenticalResume:
    @pytest.mark.parametrize("scheduler_cls", [SequentialScheduler,
                                               ThreadPoolScheduler])
    def test_every_frontier_resumes_bit_identically(self, scheduler_cls):
        g, inputs = _small_case()
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        full = execute_plan(plan, inputs, ctx, faults=FAULTS,
                            scheduler=scheduler_cls())
        assert full.ok
        n_frontiers = len(lower(plan, ctx).frontiers())
        for cut in range(n_frontiers + 1):
            ckpt = run_to_frontier(plan, inputs, ctx, cut, faults=FAULTS,
                                   scheduler=scheduler_cls())
            ckpt = ExecutionCheckpoint.loads(ckpt.dumps(), ctx.cluster)
            resumed = resume(ckpt, plan, inputs, ctx, faults=FAULTS,
                             scheduler=scheduler_cls())
            assert resumed.ok
            assert _ledger_key(resumed) == _ledger_key(full), cut
            assert resumed.ledger.total_seconds == full.ledger.total_seconds
            assert resumed.ledger.work_seconds == full.ledger.work_seconds
            for name, expected in full.outputs.items():
                assert np.array_equal(resumed.outputs[name], expected)
            assert resumed.recovery.recovered_faults == \
                full.recovery.recovered_faults

    def test_resume_across_schedulers_is_bit_identical(self):
        """Checkpoint under one scheduler, resume under the other."""
        g, inputs = _small_case(seed=1)
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        full = execute_plan(plan, inputs, ctx, faults=FAULTS)
        assert full.ok
        ckpt = run_to_frontier(plan, inputs, ctx, 2, faults=FAULTS,
                               scheduler=SequentialScheduler())
        resumed = resume(ckpt, plan, inputs, ctx, faults=FAULTS,
                         scheduler=ThreadPoolScheduler())
        assert resumed.ok
        assert _ledger_key(resumed) == _ledger_key(full)

    def test_resume_with_scheduled_straggler(self):
        """Fault occurrence counters survive the checkpoint (RNG cursor)."""
        g, inputs = _small_case(seed=2)
        ctx = OptimizerContext()
        plan = optimize(g, ctx, max_states=200)
        sgraph = lower(plan, ctx)
        victim = sgraph.stages[-1].name
        faults = FaultPlan.straggler(victim, slowdown=6.0)
        full = execute_plan(plan, inputs, ctx, faults=faults)
        assert full.ok
        ckpt = run_to_frontier(plan, inputs, ctx, 1, faults=faults)
        resumed = resume(ckpt, plan, inputs, ctx, faults=faults)
        assert resumed.ok
        assert _ledger_key(resumed) == _ledger_key(full)
        assert any(r.category == "straggler" for r in resumed.ledger.stages)


@st.composite
def interrupted_case(draw):
    """A random small graph, fault config, and an interruption frontier."""
    seed = draw(st.integers(0, 10_000))
    rng = np.random.default_rng(seed)
    n = 24
    g = ComputeGraph()
    inputs = {}
    pool = []
    for i in range(draw(st.integers(2, 3))):
        fmt = draw(st.sampled_from([single(), tiles(12), row_strips(8)]))
        vid = g.add_source(f"S{i}", matrix(n, n), fmt)
        inputs[f"S{i}"] = rng.standard_normal((n, n))
        pool.append(vid)
    for i in range(draw(st.integers(1, 3))):
        op = draw(st.sampled_from(OPS))
        picks = [pool[draw(st.integers(0, len(pool) - 1))]
                 for _ in range(op.arity)]
        pool.append(g.add_op(f"v{i}", op, tuple(picks)))
    faults = FaultConfig(
        seed=draw(st.integers(0, 1_000)),
        crash_probability=draw(st.sampled_from([0.0, 0.1])),
        straggler_probability=draw(st.sampled_from([0.0, 0.3])),
        max_faults_per_stage=2)
    cut = draw(st.integers(0, 6))
    return g, inputs, faults, cut


@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow,
                                 HealthCheck.data_too_large])
@given(interrupted_case())
def test_property_checkpoint_resume_is_float_exact(case):
    """Satellite: serialize -> deserialize -> resume keeps every ledger
    total float-exact against the uninterrupted run, for random graphs
    and random interruption frontiers."""
    graph, inputs, faults, cut = case
    ctx = OptimizerContext()
    plan = optimize(graph, ctx, max_states=200)
    full = execute_plan(plan, inputs, ctx, faults=faults)
    if not full.ok:
        assert "fault persisted" in full.failure
        return
    n_frontiers = len(lower(plan, ctx).frontiers())
    cut = min(cut, n_frontiers)
    ckpt = run_to_frontier(plan, inputs, ctx, cut, faults=faults)
    ckpt = ExecutionCheckpoint.loads(ckpt.dumps(), ctx.cluster)
    resumed = resume(ckpt, plan, inputs, ctx, faults=faults)
    assert resumed.ok
    assert resumed.ledger.total_seconds == full.ledger.total_seconds
    assert resumed.ledger.work_seconds == full.ledger.work_seconds
    assert resumed.ledger.recovery_seconds == full.ledger.recovery_seconds
    assert _ledger_key(resumed) == _ledger_key(full)
    for name, expected in full.outputs.items():
        assert np.array_equal(resumed.outputs[name], expected), name
