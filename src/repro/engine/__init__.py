"""Distributed relational engine simulator (the SimSQL/PlinyCompute stand-in)."""

from ..cluster import DEFAULT_CLUSTER, ClusterConfig
from .executor import (
    ExecutionResult,
    Executor,
    SimulationResult,
    execute_plan,
    format_hms,
    simulate,
)
from .faults import (
    FaultConfig,
    FaultEvent,
    FaultInjector,
    FaultKind,
    FaultPlan,
    InjectedFault,
    ScheduledFault,
    TransientShuffleError,
    WorkerCrash,
)
from .ledger import EngineFailure, StageRecord, TrafficLedger
from .recovery import (
    DEFAULT_RECOVERY,
    FallbackRecord,
    FaultRetriesExhausted,
    LineageCheckpoint,
    RecoveryPolicy,
    RecoveryStats,
    RobustExecutionResult,
    RobustSimulationResult,
    execute_robust,
    plan_context,
    simulate_robust,
)
from .relation import Relation, RelationalEngine, payload_bytes
from .reopt import AdaptiveResult, execute_adaptive
from .scheduler import (
    ExecutionState,
    Scheduler,
    SequentialScheduler,
    ThreadPoolScheduler,
)
from .stages import OpStage, StageGraph, StageNode, TransformStage, lower
from .storage import StoredMatrix, assemble, convert, infer_format, split, \
    store_as
from .trace import ScheduledStage, Timeline, schedule, timeline_of

__all__ = [
    "DEFAULT_CLUSTER", "ClusterConfig",
    "ExecutionResult", "Executor", "SimulationResult", "execute_plan",
    "format_hms", "simulate",
    "FaultConfig", "FaultEvent", "FaultInjector", "FaultKind", "FaultPlan",
    "InjectedFault", "ScheduledFault", "TransientShuffleError", "WorkerCrash",
    "EngineFailure", "StageRecord", "TrafficLedger",
    "DEFAULT_RECOVERY", "FallbackRecord", "FaultRetriesExhausted",
    "LineageCheckpoint", "RecoveryPolicy", "RecoveryStats",
    "RobustExecutionResult", "RobustSimulationResult", "execute_robust",
    "plan_context", "simulate_robust",
    "Relation", "RelationalEngine", "payload_bytes",
    "AdaptiveResult", "execute_adaptive",
    "ExecutionState", "Scheduler", "SequentialScheduler",
    "ThreadPoolScheduler",
    "OpStage", "StageGraph", "StageNode", "TransformStage", "lower",
    "StoredMatrix", "assemble", "convert", "infer_format", "split",
    "store_as",
    "ScheduledStage", "Timeline", "schedule", "timeline_of",
]
