"""Quickstart: declare a logical computation, optimize it, run it.

The library's core promise (and the paper's): you write linear algebra
against *logical* matrices; the optimizer picks every physical format,
operator implementation, and format transformation for you.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    OptimizerContext,
    build,
    execute_plan,
    input_matrix,
    optimize,
    relu,
    simulate,
)

# ----------------------------------------------------------------------
# 1. Declare the computation — no physical design decisions anywhere.
# ----------------------------------------------------------------------
X = input_matrix("X", 2000, 3000)
W = input_matrix("W", 3000, 500)
H = relu(X @ W)            # operator overloading builds an expression DAG
graph = build(H)

print("Logical compute graph:")
print(graph.describe())

# ----------------------------------------------------------------------
# 2. Optimize: the system chooses formats, implementations, transforms.
# ----------------------------------------------------------------------
ctx = OptimizerContext()   # default 10-worker cluster model
plan = optimize(graph, ctx)

print("\nOptimized physical plan:")
print(plan.describe())
print(f"\npredicted running time: {plan.total_seconds:.2f} simulated "
      f"seconds (optimization took {plan.optimize_seconds * 1000:.0f} ms)")

# ----------------------------------------------------------------------
# 3. Execute on real data through the relational engine and verify.
# ----------------------------------------------------------------------
rng = np.random.default_rng(0)
x = rng.standard_normal((2000, 3000))
w = rng.standard_normal((3000, 500))
result = execute_plan(plan, {"X": x, "W": w}, ctx)

reference = np.maximum(x @ w, 0)
print(f"\nmax |engine - numpy| = "
      f"{np.abs(result.output() - reference).max():.2e}")

# ----------------------------------------------------------------------
# 4. Pure simulation (no data): works at any scale.
# ----------------------------------------------------------------------
big_graph = build(relu(input_matrix("X", 1_000_000, 60_000)
                       @ input_matrix("W", 60_000, 4000)))
big_plan = optimize(big_graph, ctx)
sim = simulate(big_plan, ctx)
print(f"\nsame computation at 1M x 60K scale: {sim.display} "
      "(simulated, nothing materialized)")
