"""The "all-tile" baseline: tile everything with 1000 x 1000 chunks.

The paper's third plan-quality baseline ("simply tile everything with
1K x 1K matrices", Section 8.2).  Matrices that cannot be tiled (vectors,
tiny matrices) fall back to single tuples; joins default to the generic
shuffle implementations.
"""

from __future__ import annotations

from ..core.formats import PhysicalFormat, single, tiles
from ..core.registry import OptimizerContext
from ..core.types import MatrixType
from .common import RulePlanner, matches

TILE = tiles(1000)
SINGLE = single()


def _desired(mtype: MatrixType) -> PhysicalFormat:
    return TILE if TILE.admits(mtype) else SINGLE


class AllTilePlanner(RulePlanner):
    """Chunk every matrix into 1000 x 1000 tiles and use tile operators."""

    name = "all_tile"

    def preference(self, vertex, in_types, impl_name, in_fmts, out_fmt,
                   ctx: OptimizerContext) -> float:
        score = 0.0
        for t, f in zip(in_types, in_fmts):
            score += matches(f, _desired(t))
        score += matches(out_fmt, _desired(vertex.mtype))
        # Among equally tile-conformant patterns prefer the plain shuffle
        # implementations (this baseline does not reason about join choice).
        if impl_name in ("mm_tile_shuffle", "ew_blocked_add",
                         "ew_blocked_sub", "ew_blocked_elem_mul",
                         "ew_blocked_elem_div"):
            score += 0.25
        return score


def plan_all_tile(graph, ctx: OptimizerContext):
    """Convenience wrapper: annotate ``graph`` with the all-tile rules."""
    return AllTilePlanner().plan(graph, ctx)
