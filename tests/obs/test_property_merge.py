"""Property: merging per-stage fragments is order-independent.

The scheduler-equivalence invariant rests on one algebraic fact: folding
per-stage metric/ledger fragments in sorted-key order makes the result a
function of the fragment *contents*, never of the order the scheduler
produced (or handed over) the fragments in.  Hypothesis drives both merge
paths — :meth:`MetricsRegistry.merge_fragments` and
:meth:`TrafficLedger.splice` — with random fragments in random orders and
asserts byte-identical results.
"""

import json

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig
from repro.cost.features import CostFeatures
from repro.engine.ledger import RECOVERY, WORK, StageRecord, TrafficLedger
from repro.obs.metrics import MetricsRegistry

# Adversarial float pool: values whose sums genuinely depend on addition
# order, so any unsorted fold would be caught.
_VALUES = st.sampled_from(
    [0.1, 0.2, 0.3, 1e-9, 1e9, 1.0 / 3.0, 2.0 / 3.0, 7.5, 1e-3])

_NAMES = st.sampled_from(["stages", "seconds", "bytes", "retries"])


@st.composite
def _metric_fragment(draw):
    m = MetricsRegistry()
    for _ in range(draw(st.integers(0, 4))):
        m.count(draw(_NAMES), draw(_VALUES))
    for _ in range(draw(st.integers(0, 2))):
        m.gauge("peak_" + draw(_NAMES), draw(_VALUES))
    for _ in range(draw(st.integers(0, 3))):
        m.observe("hist_" + draw(_NAMES), draw(_VALUES))
    return m


def _merged_json(fragments: dict) -> str:
    total = MetricsRegistry()
    total.merge_fragments(fragments)
    return total.to_json()


@given(fragments=st.lists(_metric_fragment(), min_size=1, max_size=6),
       order=st.permutations(range(6)))
@settings(max_examples=60, deadline=None)
def test_metric_fragment_merge_is_order_independent(fragments, order):
    keyed = {sid: frag for sid, frag in enumerate(fragments)}
    shuffled = {sid: keyed[sid] for sid in order if sid in keyed}
    assert _merged_json(shuffled) == _merged_json(keyed)
    # The canonical JSON is parseable and covers every recorded name.
    doc = json.loads(_merged_json(keyed))
    recorded = set()
    for frag in fragments:
        recorded |= set(frag.counters) | set(frag.gauges) \
            | set(frag.histograms)
    produced = set(doc["counters"]) | set(doc["gauges"]) \
        | set(doc["histograms"])
    assert produced == recorded


@st.composite
def _ledger_fragment(draw):
    records = []
    for i in range(draw(st.integers(1, 3))):
        records.append(StageRecord(
            name=f"stage-{i}",
            features=CostFeatures(flops=draw(_VALUES)),
            seconds=draw(_VALUES),
            category=draw(st.sampled_from([WORK, RECOVERY]))))
    return records


@given(fragments=st.lists(_ledger_fragment(), min_size=1, max_size=6),
       order=st.permutations(range(6)))
@settings(max_examples=60, deadline=None)
def test_ledger_splice_is_order_independent(fragments, order):
    cluster = ClusterConfig(num_workers=4)
    keyed = {sid: frag for sid, frag in enumerate(fragments)}
    shuffled = {sid: keyed[sid] for sid in order if sid in keyed}

    a = TrafficLedger(cluster)
    keys_a = a.splice(keyed)
    b = TrafficLedger(cluster)
    keys_b = b.splice(shuffled)

    assert keys_a == keys_b == sorted(keyed)
    assert [(r.name, r.seconds, r.category) for r in a.stages] == \
        [(r.name, r.seconds, r.category) for r in b.stages]
    # Bit-identical float totals, not approximately equal ones.
    assert a.total_seconds == b.total_seconds
