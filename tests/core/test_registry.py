"""Tests for the optimizer context: menus, caching, ablation switches."""

import math


from repro.cluster import simsql_cluster
from repro.core import OptimizerContext, matrix
from repro.core.atoms import MATMUL
from repro.core.formats import (
    row_strips,
    single,
    tiles,
)


class TestMenus:
    def test_impls_for_filters_by_op(self):
        ctx = OptimizerContext()
        matmuls = ctx.impls_for(MATMUL)
        assert len(matmuls) == 10
        assert all(i.op is MATMUL for i in matmuls)

    def test_accepted_patterns_all_feasible(self):
        ctx = OptimizerContext()
        types = (matrix(4000, 4000), matrix(4000, 4000))
        for impl, in_fmts, out_fmt, cost in ctx.accepted_patterns(
                MATMUL, types):
            assert math.isfinite(cost)
            assert out_fmt is not None

    def test_typed_patterns_superset_of_accepted(self):
        """typed menus include runtime-infeasible rows (baselines' view)."""
        ctx = OptimizerContext(cluster=simsql_cluster(10))
        types = (matrix(160_000, 10_000), matrix(10_000, 160_000))
        typed = ctx.typed_patterns(MATMUL, types)
        accepted = ctx.accepted_patterns(MATMUL, types)
        assert len(typed) >= len(accepted)
        assert any(math.isinf(cost) for *_rest, cost in typed)

    def test_output_candidates_are_admissible(self):
        ctx = OptimizerContext()
        types = (matrix(4000, 4000), matrix(4000, 4000))
        out_type = MATMUL.out_type(*types)
        for fmt in ctx.output_candidates(MATMUL, types):
            assert fmt.admits(out_type)

    def test_menu_caching_returns_same_object(self):
        ctx = OptimizerContext()
        types = (matrix(2000, 2000), matrix(2000, 2000))
        first = ctx.accepted_patterns(MATMUL, types)
        second = ctx.accepted_patterns(MATMUL, types)
        assert first is second


class TestTransformChoice:
    def test_identity_preferred_for_same_format(self):
        ctx = OptimizerContext()
        choice = ctx.transform_choice(matrix(2000, 2000), tiles(1000),
                                      tiles(1000))
        assert choice[0].name == "identity"
        assert choice[2] == 0.0

    def test_unreachable_returns_none(self):
        ctx = OptimizerContext()
        # A dense type can never land in a sparse format.
        from repro.core.formats import csr_strips
        assert ctx.transform_choice(matrix(2000, 2000), tiles(1000),
                                    csr_strips(1000)) is None

    def test_search_cost_zeroed_under_ablation(self):
        ctx = OptimizerContext(charge_transforms=False)
        cost = ctx.search_transform_cost(matrix(2000, 2000), single(),
                                         tiles(1000))
        assert cost == 0.0
        # But the real transformation cost is still nonzero.
        assert ctx.transform_choice(matrix(2000, 2000), single(),
                                    tiles(1000))[2] > 0.0


class TestContextExtension:
    def test_source_formats_added_for_search(self):
        from repro.core.optimizer import _context_for
        from repro.core import ComputeGraph

        g = ComputeGraph()
        g.add_source("A", matrix(100, 10_000), row_strips(10))
        ctx = OptimizerContext()
        extended = _context_for(g, ctx)
        assert row_strips(10) in extended.formats
        assert len(extended.formats) == len(ctx.formats) + 1

    def test_no_copy_when_formats_already_known(self):
        from repro.core.optimizer import _context_for
        from repro.core import ComputeGraph

        g = ComputeGraph()
        g.add_source("A", matrix(4000, 4000), tiles(1000))
        ctx = OptimizerContext()
        assert _context_for(g, ctx) is ctx
