"""Tracer unit tests: deterministic ids, nesting, and the no-op path."""

import threading

from repro.obs.tracer import (
    NULL_TRACER,
    NullSpan,
    Span,
    Tracer,
    as_tracer,
)


class TestIds:
    def test_root_and_child_ids_are_paths(self):
        tr = Tracer()
        with tr.span("optimize", kind="optimize") as root:
            with root.span("pass:cse", kind="pass"):
                pass
            with root.span("pass:cse", kind="pass"):
                pass
            with root.span("search:tree", kind="search"):
                pass
        sids = sorted(s.sid for s in tr.spans())
        assert sids == ["optimize#0", "optimize#0/pass:cse#0",
                        "optimize#0/pass:cse#1", "optimize#0/search:tree#0"]

    def test_repeated_roots_count_occurrences(self):
        tr = Tracer()
        for _ in range(3):
            with tr.span("optimize"):
                pass
        assert [s.sid for s in tr.spans()] == \
            ["optimize#0", "optimize#1", "optimize#2"]

    def test_implicit_parent_is_thread_current(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner") as inner:
                assert inner.sid == "outer#0/inner#0"
        by_sid = {s.sid: s for s in tr.spans()}
        assert by_sid["outer#0/inner#0"].parent == "outer#0"
        assert by_sid["outer#0"].parent is None

    def test_explicit_parent_crosses_threads(self):
        """A worker thread names its parent explicitly; ids stay rooted."""
        tr = Tracer()
        with tr.span("execute") as root:
            def work():
                with tr.span("stage", parent=root):
                    pass
            threads = [threading.Thread(target=work) for _ in range(4)]
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        stage_ids = sorted(s.sid for s in tr.spans() if s.name == "stage")
        assert stage_ids == [f"execute#0/stage#{k}" for k in range(4)]


class TestSpans:
    def test_attrs_and_set(self):
        tr = Tracer()
        with tr.span("s", kind="k", a=1) as span:
            span.set(b=2)
            span.set(a=3)
        (done,) = tr.spans()
        assert done.kind == "k"
        assert done.attrs == {"a": 3, "b": 2}

    def test_exception_records_error_attr(self):
        tr = Tracer()
        try:
            with tr.span("boom"):
                raise ValueError("bad")
        except ValueError:
            pass
        (done,) = tr.spans()
        assert done.attrs["error"] == "ValueError: bad"

    def test_intervals_nest(self):
        tr = Tracer()
        with tr.span("outer"):
            with tr.span("inner"):
                pass
        by_name = {s.name: s for s in tr.spans()}
        inner, outer = by_name["inner"], by_name["outer"]
        assert outer.start <= inner.start <= inner.end <= outer.end

    def test_add_span_records_verbatim(self):
        tr = Tracer()
        virtual = Span("timeline#0", None, "timeline", "timeline", 0.0, 5.0)
        tr.add_span(virtual)
        assert tr.spans() == [virtual]

    def test_span_round_trips_through_dict(self):
        span = Span("a#0", None, "a", "x", 0.5, 1.5, {"n": 3})
        assert Span.from_dict(span.to_dict()) == span


class TestDisabled:
    def test_disabled_tracer_hands_out_shared_null_span(self):
        tr = Tracer(enabled=False)
        one = tr.span("anything", kind="x", attr=1)
        two = tr.span("else")
        assert isinstance(one, NullSpan)
        assert one is two  # the shared singleton: zero allocation

    def test_null_span_absorbs_everything(self):
        span = NULL_TRACER.span("x")
        with span as active:
            active.set(a=1)
            child = active.span("child")
            assert child is active
        assert NULL_TRACER.spans() == []

    def test_as_tracer_normalizes_none(self):
        assert as_tracer(None) is NULL_TRACER
        tr = Tracer()
        assert as_tracer(tr) is tr
