"""High-level logical expression API (physical-design-free computations)."""

from .expr import (
    Expr,
    add_bias,
    build,
    col_sums,
    default_load_format,
    exp,
    input_matrix,
    inverse,
    relu,
    relu_grad,
    row_sums,
    sigmoid,
    softmax,
)

__all__ = [
    "Expr", "add_bias", "build", "col_sums", "default_load_format", "exp",
    "input_matrix", "inverse", "relu", "relu_grad", "row_sums", "sigmoid",
    "softmax",
]
